"""Evaluation of SPARQL FILTER expressions.

Implements the effective boolean value (EBV) rules and the operator/
built-in semantics of SPARQL 1.0 over the :class:`Binding` solution
mappings.  Type errors follow the SPARQL convention: they do not abort
evaluation but mark the expression result as an error, which makes the
enclosing FILTER reject the solution (and lets ``!``/``||``/``&&`` recover
where the specification allows it).
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Any

from ..rdf import BNode, Literal, Term, URIRef, Variable, XSD
from .ast import (
    BinaryExpression,
    ExistsExpression,
    Expression,
    FunctionCall,
    TermExpression,
    UnaryExpression,
    VariableExpression,
)
from .results import Binding

__all__ = ["ExpressionError", "evaluate_expression", "effective_boolean_value", "expression_satisfied"]


class ExpressionError(Exception):
    """A SPARQL expression type error (unbound variable, bad operands...)."""


def expression_satisfied(expression: Expression, binding: Binding, graph=None) -> bool:
    """True when the FILTER expression evaluates to EBV true.

    Expression errors count as *not satisfied* — the standard FILTER
    semantics — instead of propagating.
    """
    try:
        value = evaluate_expression(expression, binding, graph)
        return effective_boolean_value(value)
    except ExpressionError:
        return False


def evaluate_expression(expression: Expression, binding: Binding, graph=None) -> Any:
    """Evaluate an expression to an RDF term, a Python value or raise."""
    if isinstance(expression, TermExpression):
        term = expression.term
        if isinstance(term, Variable):
            return _lookup(term, binding)
        return term
    if isinstance(expression, VariableExpression):
        return _lookup(expression.variable, binding)
    if isinstance(expression, UnaryExpression):
        return _evaluate_unary(expression, binding, graph)
    if isinstance(expression, BinaryExpression):
        return _evaluate_binary(expression, binding, graph)
    if isinstance(expression, FunctionCall):
        return _evaluate_function(expression, binding, graph)
    if isinstance(expression, ExistsExpression):
        return _evaluate_exists(expression, binding, graph)
    raise ExpressionError(f"unsupported expression node: {expression!r}")


def _lookup(variable: Variable, binding: Binding) -> Term:
    term = binding.get_term(variable)
    if term is None:
        raise ExpressionError(f"unbound variable ?{variable.name}")
    return term


# --------------------------------------------------------------------------- #
# Effective boolean value
# --------------------------------------------------------------------------- #
def effective_boolean_value(value: Any) -> bool:
    """SPARQL 1.0 effective boolean value rules."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, Decimal)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            return python_value
        if isinstance(python_value, (int, float, Decimal)):
            return python_value != 0
        return len(value.lexical) > 0
    if isinstance(value, (URIRef, BNode)):
        raise ExpressionError("EBV of an IRI or blank node is a type error")
    raise ExpressionError(f"no effective boolean value for {value!r}")


# --------------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------------- #
def _evaluate_unary(expression: UnaryExpression, binding: Binding, graph) -> Any:
    if expression.operator == "!":
        return not effective_boolean_value(evaluate_expression(expression.operand, binding, graph))
    value = _numeric(evaluate_expression(expression.operand, binding, graph))
    if expression.operator == "-":
        return -value
    return +value


def _evaluate_binary(expression: BinaryExpression, binding: Binding, graph) -> Any:
    operator = expression.operator
    if operator == "||":
        return _logical_or(expression, binding, graph)
    if operator == "&&":
        return _logical_and(expression, binding, graph)

    left = evaluate_expression(expression.left, binding, graph)
    right = evaluate_expression(expression.right, binding, graph)

    if operator == "=":
        return _equals(left, right)
    if operator == "!=":
        return not _equals(left, right)
    if operator in ("<", ">", "<=", ">="):
        return _compare(operator, left, right)
    if operator in ("+", "-", "*", "/"):
        return _arithmetic(operator, left, right)
    raise ExpressionError(f"unknown operator {operator!r}")


def _logical_or(expression: BinaryExpression, binding: Binding, graph) -> bool:
    """``||`` with SPARQL error recovery: true wins over an error."""
    left_error: ExpressionError | None = None
    try:
        if effective_boolean_value(evaluate_expression(expression.left, binding, graph)):
            return True
    except ExpressionError as exc:
        left_error = exc
    try:
        if effective_boolean_value(evaluate_expression(expression.right, binding, graph)):
            return True
    except ExpressionError:
        raise
    if left_error is not None:
        raise left_error
    return False


def _logical_and(expression: BinaryExpression, binding: Binding, graph) -> bool:
    """``&&`` with SPARQL error recovery: false wins over an error."""
    left_error: ExpressionError | None = None
    left_value = True
    try:
        left_value = effective_boolean_value(evaluate_expression(expression.left, binding, graph))
        if not left_value:
            return False
    except ExpressionError as exc:
        left_error = exc
    right_value = effective_boolean_value(evaluate_expression(expression.right, binding, graph))
    if not right_value:
        return False
    if left_error is not None:
        raise left_error
    return left_value and right_value


def _equals(left: Any, right: Any) -> bool:
    left_term = _as_term_or_value(left)
    right_term = _as_term_or_value(right)
    if isinstance(left_term, Literal) and isinstance(right_term, Literal):
        if left_term.is_numeric() and right_term.is_numeric():
            return left_term.to_python() == right_term.to_python()
        return left_term == right_term
    # Mixed numeric comparisons: arithmetic produces plain Python numbers
    # that must still compare equal to numeric literals.
    left_number = _maybe_number(left_term)
    right_number = _maybe_number(right_term)
    if left_number is not None and right_number is not None:
        return left_number == right_number
    if isinstance(left_term, Term) and isinstance(right_term, Term):
        return left_term == right_term
    # Mixed Python/term comparisons (e.g. result of STR()).
    return _plain_value(left_term) == _plain_value(right_term)


def _maybe_number(value: Any) -> int | float | Decimal | None:
    """The numeric value of ``value`` or ``None`` when it is not numeric."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float, Decimal)):
        return value
    if isinstance(value, Literal) and value.is_numeric():
        python_value = value.to_python()
        if isinstance(python_value, (int, float, Decimal)) and not isinstance(python_value, bool):
            return python_value
    return None


def _compare(operator: str, left: Any, right: Any) -> bool:
    left_value = _comparable(left)
    right_value = _comparable(right)
    if isinstance(left_value, str) != isinstance(right_value, str):
        raise ExpressionError(f"cannot compare {left!r} and {right!r}")
    if operator == "<":
        return left_value < right_value
    if operator == ">":
        return left_value > right_value
    if operator == "<=":
        return left_value <= right_value
    return left_value >= right_value


def _arithmetic(operator: str, left: Any, right: Any) -> int | float | Decimal:
    left_value = _numeric(left)
    right_value = _numeric(right)
    if operator == "+":
        return left_value + right_value
    if operator == "-":
        return left_value - right_value
    if operator == "*":
        return left_value * right_value
    if right_value == 0:
        raise ExpressionError("division by zero")
    result = left_value / right_value
    return result


# --------------------------------------------------------------------------- #
# Built-in functions
# --------------------------------------------------------------------------- #
def _evaluate_function(call: FunctionCall, binding: Binding, graph) -> Any:
    name = call.name
    if name == "BOUND":
        return _builtin_bound(call, binding)
    arguments = [evaluate_expression(argument, binding, graph) for argument in call.arguments]
    if name == "STR":
        return _builtin_str(arguments)
    if name == "LANG":
        return _builtin_lang(arguments)
    if name == "LANGMATCHES":
        return _builtin_langmatches(arguments)
    if name == "DATATYPE":
        return _builtin_datatype(arguments)
    if name in ("ISURI", "ISIRI"):
        return isinstance(_single(arguments), URIRef)
    if name == "ISLITERAL":
        return isinstance(_single(arguments), Literal)
    if name == "ISBLANK":
        return isinstance(_single(arguments), BNode)
    if name == "SAMETERM":
        if len(arguments) != 2:
            raise ExpressionError("sameTerm requires two arguments")
        return arguments[0] == arguments[1]
    if name == "REGEX":
        return _builtin_regex(arguments)
    raise ExpressionError(f"unknown function {name!r}")


def _builtin_bound(call: FunctionCall, binding: Binding) -> bool:
    if len(call.arguments) != 1 or not isinstance(call.arguments[0], VariableExpression):
        raise ExpressionError("BOUND requires a single variable argument")
    return binding.get_term(call.arguments[0].variable) is not None


def _builtin_str(arguments) -> str:
    term = _single(arguments)
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, URIRef):
        return str(term)
    if isinstance(term, str):
        return term
    raise ExpressionError(f"STR not defined for {term!r}")


def _builtin_lang(arguments) -> str:
    term = _single(arguments)
    if isinstance(term, Literal):
        return term.lang or ""
    raise ExpressionError("LANG requires a literal")


def _builtin_langmatches(arguments) -> bool:
    if len(arguments) != 2:
        raise ExpressionError("LANGMATCHES requires two arguments")
    tag = _plain_value(arguments[0])
    pattern = _plain_value(arguments[1])
    if not isinstance(tag, str) or not isinstance(pattern, str):
        raise ExpressionError("LANGMATCHES arguments must be strings")
    if not tag:
        return False
    if pattern == "*":
        return True
    return tag.lower() == pattern.lower() or tag.lower().startswith(pattern.lower() + "-")


def _builtin_datatype(arguments) -> URIRef:
    term = _single(arguments)
    if isinstance(term, Literal):
        if term.datatype is not None:
            return term.datatype
        if term.lang is None:
            return XSD.string
        raise ExpressionError("DATATYPE of a language-tagged literal is a type error")
    raise ExpressionError("DATATYPE requires a literal")


def _builtin_regex(arguments) -> bool:
    if len(arguments) not in (2, 3):
        raise ExpressionError("REGEX requires 2 or 3 arguments")
    text = _plain_value(arguments[0])
    pattern = _plain_value(arguments[1])
    flags_text = _plain_value(arguments[2]) if len(arguments) == 3 else ""
    if not isinstance(text, str) or not isinstance(pattern, str):
        raise ExpressionError("REGEX arguments must be strings")
    flags = 0
    if isinstance(flags_text, str) and "i" in flags_text:
        flags |= re.IGNORECASE
    if isinstance(flags_text, str) and "s" in flags_text:
        flags |= re.DOTALL
    if isinstance(flags_text, str) and "m" in flags_text:
        flags |= re.MULTILINE
    try:
        return re.search(pattern, text, flags) is not None
    except re.error as exc:
        raise ExpressionError(f"invalid regular expression: {exc}") from exc


def _evaluate_exists(expression: ExistsExpression, binding: Binding, graph) -> bool:
    if graph is None:
        raise ExpressionError("EXISTS requires a graph to evaluate against")
    from .evaluator import evaluate_group

    solutions = evaluate_group(expression.group, graph, initial=binding)
    found = next(iter(solutions), None) is not None
    return not found if expression.negated else found


# --------------------------------------------------------------------------- #
# Coercions
# --------------------------------------------------------------------------- #
def _single(arguments) -> Any:
    if len(arguments) != 1:
        raise ExpressionError("built-in expects exactly one argument")
    return arguments[0]


def _as_term_or_value(value: Any) -> Any:
    return value


def _plain_value(value: Any) -> Any:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, URIRef):
        return str(value)
    return value


def _numeric(value: Any) -> int | float | Decimal:
    if isinstance(value, bool):
        raise ExpressionError("boolean is not a number")
    if isinstance(value, (int, float, Decimal)):
        return value
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            raise ExpressionError("boolean literal is not a number")
        if isinstance(python_value, (int, float, Decimal)):
            return python_value
    raise ExpressionError(f"not a numeric value: {value!r}")


def _comparable(value: Any) -> Any:
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, (int, float, Decimal)) and not isinstance(python_value, bool):
            return python_value
        return value.lexical
    if isinstance(value, (int, float, Decimal)) and not isinstance(value, bool):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, URIRef):
        return str(value)
    raise ExpressionError(f"value not comparable: {value!r}")
