"""SPARQL query-result wire formats: writers, parsers, content negotiation.

The W3C SPARQL 1.1 Protocol transports SELECT/ASK results in one of four
result formats (JSON, XML, CSV, TSV) and CONSTRUCT results as an RDF
document (Turtle or N-Triples here).  This module generalises
:meth:`ResultSet.to_json_dict` into symmetric *writer/parser* pairs for
every format, so the HTTP server and the HTTP endpoint client can exchange
result sets without loss:

* JSON — ``application/sparql-results+json`` (lossless),
* XML — ``application/sparql-results+xml`` (lossless),
* TSV — ``text/tab-separated-values`` with N-Triples-encoded terms
  (lossless),
* CSV — ``text/csv`` with plain value strings (lossy *by specification*:
  a URI and a string literal with the same characters are
  indistinguishable; parsing yields plain literals).

ASK results round-trip through JSON and XML only — the W3C CSV/TSV result
formats do not define a boolean encoding, and inventing one would collide
with a single-column SELECT result.

:func:`negotiate` implements the ``Accept``-header side of the protocol,
mapping media ranges (with ``q`` weights) onto format names.
"""

from __future__ import annotations

import csv
import io
import json
import xml.etree.ElementTree as ElementTree
from collections.abc import Mapping, Sequence

from ..rdf import BNode, Literal, Term, URIRef, Variable
from .results import AskResult, Binding, ResultSet, TermSerializationError

__all__ = [
    "FormatError",
    "RESULT_MEDIA_TYPES",
    "ASK_MEDIA_TYPES",
    "GRAPH_MEDIA_TYPES",
    "negotiate",
    "write_results",
    "parse_results",
    "write_json",
    "write_xml",
    "write_csv",
    "write_tsv",
    "parse_json",
    "parse_xml",
    "parse_csv",
    "parse_tsv",
    "write_graph",
    "read_graph",
    "term_to_json",
    "term_from_json",
]

#: XML namespace of the SPARQL results vocabulary.
SPARQL_RESULTS_NS = "http://www.w3.org/2005/sparql-results#"

#: Canonical media type served per SELECT result format.
RESULT_MEDIA_TYPES: dict[str, str] = {
    "json": "application/sparql-results+json",
    "xml": "application/sparql-results+xml",
    "csv": "text/csv",
    "tsv": "text/tab-separated-values",
}

#: Formats able to carry an ASK (boolean) result.
ASK_MEDIA_TYPES: dict[str, str] = {
    "json": RESULT_MEDIA_TYPES["json"],
    "xml": RESULT_MEDIA_TYPES["xml"],
}

#: Canonical media type served per CONSTRUCT graph format.
GRAPH_MEDIA_TYPES: dict[str, str] = {
    "turtle": "text/turtle",
    "ntriples": "application/n-triples",
}

#: Accepted media ranges (exact match, lower-cased) → format name.
_RESULT_ALIASES: dict[str, str] = {
    "application/sparql-results+json": "json",
    "application/json": "json",
    "application/sparql-results+xml": "xml",
    "application/xml": "xml",
    "text/xml": "xml",
    "text/csv": "csv",
    "text/tab-separated-values": "tsv",
}

_GRAPH_ALIASES: dict[str, str] = {
    "text/turtle": "turtle",
    "application/x-turtle": "turtle",
    "application/n-triples": "ntriples",
    "text/plain": "ntriples",
}


class FormatError(ValueError):
    """A result document (or format name) is malformed or unsupported."""


# --------------------------------------------------------------------------- #
# Content negotiation
# --------------------------------------------------------------------------- #
def _parse_accept(header: str) -> list[tuple[str, float]]:
    """``Accept`` media ranges as (type, q) pairs, highest preference first."""
    ranges: list[tuple[str, float, int]] = []
    for position, part in enumerate(header.split(",")):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(";")
        media = pieces[0].strip().lower()
        quality = 1.0
        for parameter in pieces[1:]:
            parameter = parameter.strip()
            if parameter.startswith("q="):
                try:
                    quality = float(parameter[2:])
                except ValueError:
                    quality = 0.0
        ranges.append((media, quality, position))
    # Sort by q descending; ties keep the header's order (stable positions).
    ranges.sort(key=lambda entry: (-entry[1], entry[2]))
    return [(media, quality) for media, quality, _ in ranges]


def negotiate(
    accept: str | None,
    aliases: Mapping[str, str] | None = None,
    default: str = "json",
    allowed: Sequence[str] | None = None,
) -> str | None:
    """Pick a result format for an ``Accept`` header.

    Returns the format name for the client's most-preferred supported media
    range, ``default`` for a missing header or a wildcard, and ``None``
    when every range is unsupported (the server answers 406).  ``allowed``
    restricts the candidate formats (e.g. JSON/XML only for ASK).
    """
    table = dict(aliases if aliases is not None else _RESULT_ALIASES)
    if allowed is not None:
        table = {media: name for media, name in table.items() if name in allowed}
    if not accept or not accept.strip():
        return default
    for media, quality in _parse_accept(accept):
        if quality <= 0:
            continue
        if media in table:
            return table[media]
        if media == "*/*":
            return default
        if media.endswith("/*"):
            prefix = media[:-1]
            for candidate, name in table.items():
                if candidate.startswith(prefix):
                    return name
    return None


def negotiate_graph(accept: str | None, default: str = "turtle") -> str | None:
    """:func:`negotiate` specialised to CONSTRUCT graph formats."""
    return negotiate(accept, aliases=_GRAPH_ALIASES, default=default)


# --------------------------------------------------------------------------- #
# Term encoding
# --------------------------------------------------------------------------- #
def term_to_json(term: Term) -> dict[str, str]:
    """SPARQL-results-JSON object for one RDF term (strict: see results.py)."""
    from .results import _term_to_json

    return _term_to_json(term)


def term_from_json(payload: Mapping[str, str]) -> Term:
    """Inverse of :func:`term_to_json` (accepts the legacy ``typed-literal``)."""
    try:
        kind = payload["type"]
        value = payload["value"]
    except KeyError as exc:
        raise FormatError(f"result term is missing {exc} in {dict(payload)!r}") from None
    if kind == "uri":
        return URIRef(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        lang = payload.get("xml:lang")
        datatype = payload.get("datatype")
        if lang:
            return Literal(value, lang=lang)
        if datatype:
            return Literal(value, datatype=URIRef(datatype))
        return Literal(value)
    raise FormatError(f"unknown result term type: {kind!r}")


def _require_protocol_term(term: Term) -> None:
    """Reject terms that may not appear in a protocol response binding."""
    if not isinstance(term, (URIRef, BNode, Literal)):
        raise TermSerializationError(
            f"term {term!r} ({type(term).__name__}) cannot appear in a SPARQL result binding"
        )


def _term_to_n3(term: Term) -> str:
    _require_protocol_term(term)
    return term.n3()


_N3_ESCAPES = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}


def _unescape_n3_string(text: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text):
                raise FormatError(f"dangling escape in literal: {text!r}")
            escape = text[index + 1]
            if escape not in _N3_ESCAPES:
                raise FormatError(f"unknown escape \\{escape} in literal: {text!r}")
            out.append(_N3_ESCAPES[escape])
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def parse_n3_term(text: str) -> Term:
    """Parse one N-Triples-style term (the TSV cell encoding)."""
    text = text.strip()
    if not text:
        raise FormatError("empty term")
    if text.startswith("<") and text.endswith(">"):
        return URIRef(text[1:-1])
    if text.startswith("_:"):
        return BNode(text[2:])
    if text.startswith('"'):
        # Find the closing quote, skipping escaped characters.
        index = 1
        while index < len(text):
            if text[index] == "\\":
                index += 2
                continue
            if text[index] == '"':
                break
            index += 1
        if index >= len(text):
            raise FormatError(f"unterminated literal: {text!r}")
        lexical = _unescape_n3_string(text[1:index])
        suffix = text[index + 1 :]
        if not suffix:
            return Literal(lexical)
        if suffix.startswith("@"):
            return Literal(lexical, lang=suffix[1:])
        if suffix.startswith("^^<") and suffix.endswith(">"):
            return Literal(lexical, datatype=URIRef(suffix[3:-1]))
        raise FormatError(f"malformed literal suffix: {text!r}")
    # Turtle shorthand forms some emitters use for numbers/booleans.
    if text in ("true", "false"):
        return Literal(text == "true")
    try:
        return Literal(int(text))
    except ValueError:
        pass
    try:
        return Literal(float(text))
    except ValueError:
        pass
    raise FormatError(f"unparseable term: {text!r}")


# --------------------------------------------------------------------------- #
# Writers
# --------------------------------------------------------------------------- #
def write_json(result: ResultSet | AskResult) -> str:
    """SPARQL 1.1 Query Results JSON document.

    When the evaluator attached static-analysis diagnostics, they ride
    along under a top-level ``diagnostics`` key (a spec-tolerated
    extension; parsers ignore unknown keys).
    """
    if isinstance(result, AskResult):
        payload: dict[str, object] = {"head": {}, "boolean": result.value}
    else:
        payload = result.to_json_dict()
    diagnostics = getattr(result, "diagnostics", None)
    if diagnostics:
        payload["diagnostics"] = [d.to_json_dict() for d in diagnostics]
    return json.dumps(payload, indent=2, ensure_ascii=False) + "\n"


def _xml_escape(text: str) -> str:
    # \r must go out as a character reference: XML parsers normalise raw
    # carriage returns to \n, which would silently corrupt literals.
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;").replace("\r", "&#13;")
    )


def write_xml(result: ResultSet | AskResult) -> str:
    """SPARQL Query Results XML document."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<sparql xmlns="{SPARQL_RESULTS_NS}">',
    ]
    if isinstance(result, AskResult):
        lines.append("  <head/>")
        lines.append(f"  <boolean>{'true' if result.value else 'false'}</boolean>")
    else:
        lines.append("  <head>")
        for variable in result.variables:
            lines.append(f'    <variable name="{_xml_escape(variable.name)}"/>')
        lines.append("  </head>")
        lines.append("  <results>")
        for binding in result.bindings:
            lines.append("    <result>")
            for variable in result.variables:
                term = binding.get_term(variable)
                if term is None:
                    continue
                lines.append(
                    f'      <binding name="{_xml_escape(variable.name)}">'
                    f"{_xml_term(term)}</binding>"
                )
            lines.append("    </result>")
        lines.append("  </results>")
    lines.append("</sparql>")
    return "\n".join(lines) + "\n"


def _xml_term(term: Term) -> str:
    if isinstance(term, URIRef):
        return f"<uri>{_xml_escape(str(term))}</uri>"
    if isinstance(term, BNode):
        return f"<bnode>{_xml_escape(str(term))}</bnode>"
    if isinstance(term, Literal):
        attributes = ""
        if term.lang:
            attributes = f' xml:lang="{_xml_escape(term.lang)}"'
        elif term.datatype is not None:
            attributes = f' datatype="{_xml_escape(str(term.datatype))}"'
        return f"<literal{attributes}>{_xml_escape(term.lexical)}</literal>"
    _require_protocol_term(term)
    raise AssertionError("unreachable")  # pragma: no cover


def write_csv(result: ResultSet | AskResult) -> str:
    """SPARQL 1.1 CSV results: header of variable names, plain value cells."""
    if isinstance(result, AskResult):
        raise FormatError("ASK results have no CSV encoding; use json or xml")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    writer.writerow([variable.name for variable in result.variables])
    for binding in result.bindings:
        row = []
        for variable in result.variables:
            term = binding.get_term(variable)
            if term is None:
                row.append("")
                continue
            _require_protocol_term(term)
            row.append(term.n3() if isinstance(term, BNode) else str(term))
        writer.writerow(row)
    return buffer.getvalue()


def write_tsv(result: ResultSet | AskResult) -> str:
    """SPARQL 1.1 TSV results: ``?var`` header, N-Triples-encoded cells."""
    if isinstance(result, AskResult):
        raise FormatError("ASK results have no TSV encoding; use json or xml")
    lines = ["\t".join(f"?{variable.name}" for variable in result.variables)]
    for binding in result.bindings:
        cells = []
        for variable in result.variables:
            term = binding.get_term(variable)
            cells.append("" if term is None else _term_to_n3(term))
        lines.append("\t".join(cells))
    return "\n".join(lines) + "\n"


_RESULT_WRITERS = {
    "json": write_json,
    "xml": write_xml,
    "csv": write_csv,
    "tsv": write_tsv,
}


def write_results(result: ResultSet | AskResult, format: str = "json") -> str:
    """Serialise a SELECT/ASK result in the named format."""
    if format == "table":
        if isinstance(result, AskResult):
            return f"{result.value}\n"
        return result.to_table() + "\n"
    try:
        writer = _RESULT_WRITERS[format]
    except KeyError:
        raise FormatError(f"unsupported result format: {format!r}") from None
    return writer(result)


def write_graph(graph, format: str = "turtle") -> str:
    """Serialise a CONSTRUCT graph (Turtle or N-Triples)."""
    if format not in GRAPH_MEDIA_TYPES:
        raise FormatError(f"unsupported graph format: {format!r}")
    return graph.serialize(format=format)


def read_graph(text: str, format: str = "turtle"):
    """Parse a CONSTRUCT response body back into a graph."""
    from ..turtle import parse_graph

    if format not in GRAPH_MEDIA_TYPES:
        raise FormatError(f"unsupported graph format: {format!r}")
    return parse_graph(text, format=format)


# --------------------------------------------------------------------------- #
# Parsers
# --------------------------------------------------------------------------- #
def parse_json(text: str) -> ResultSet | AskResult:
    """Parse a SPARQL results JSON document."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"malformed results JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FormatError("results JSON must be an object")
    if "boolean" in payload:
        return AskResult(bool(payload["boolean"]))
    try:
        names = payload["head"]["vars"]
        rows = payload["results"]["bindings"]
    except (KeyError, TypeError) as exc:
        raise FormatError(f"results JSON is missing {exc}") from None
    variables = [Variable(name) for name in names]
    bindings = []
    for row in rows:
        data = {}
        for name, term_payload in row.items():
            data[Variable(name)] = term_from_json(term_payload)
        bindings.append(Binding(data))
    return ResultSet(variables, bindings)


def parse_xml(text: str) -> ResultSet | AskResult:
    """Parse a SPARQL results XML document."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise FormatError(f"malformed results XML: {exc}") from None
    ns = {"sr": SPARQL_RESULTS_NS}
    boolean = root.find("sr:boolean", ns)
    if boolean is not None:
        return AskResult((boolean.text or "").strip().lower() == "true")
    variables = [
        Variable(element.attrib["name"])
        for element in root.findall("sr:head/sr:variable", ns)
    ]
    bindings = []
    for result in root.findall("sr:results/sr:result", ns):
        data = {}
        for binding in result.findall("sr:binding", ns):
            name = binding.attrib.get("name")
            if name is None:
                raise FormatError("<binding> without a name attribute")
            data[Variable(name)] = _xml_term_from(binding)
        bindings.append(Binding(data))
    return ResultSet(variables, bindings)


def _xml_term_from(binding: ElementTree.Element) -> Term:
    ns = {"sr": SPARQL_RESULTS_NS}
    uri = binding.find("sr:uri", ns)
    if uri is not None:
        return URIRef(uri.text or "")
    bnode = binding.find("sr:bnode", ns)
    if bnode is not None:
        return BNode(bnode.text or "")
    literal = binding.find("sr:literal", ns)
    if literal is not None:
        lexical = literal.text or ""
        lang = literal.attrib.get("{http://www.w3.org/XML/1998/namespace}lang")
        datatype = literal.attrib.get("datatype")
        if lang:
            return Literal(lexical, lang=lang)
        if datatype:
            return Literal(lexical, datatype=URIRef(datatype))
        return Literal(lexical)
    raise FormatError("binding carries no <uri>, <bnode> or <literal> child")


def parse_csv(text: str) -> ResultSet:
    """Parse SPARQL CSV results.

    CSV is lossy by specification: every non-empty cell comes back as a
    plain literal (or a blank node for ``_:``-prefixed cells); an empty
    cell is an unbound variable.
    """
    rows = list(csv.reader(io.StringIO(text)))
    if not rows:
        raise FormatError("CSV results need a header row")
    variables = [Variable(name) for name in rows[0]]
    bindings = []
    for row in rows[1:]:
        if len(row) > len(variables):
            raise FormatError(f"CSV row wider than the header: {row!r}")
        data = {}
        for variable, cell in zip(variables, row, strict=False):
            if cell == "":
                continue
            if cell.startswith("_:"):
                data[variable] = BNode(cell[2:])
            else:
                data[variable] = Literal(cell)
        bindings.append(Binding(data))
    return ResultSet(variables, bindings)


def parse_tsv(text: str) -> ResultSet:
    """Parse SPARQL TSV results (lossless: cells are N-Triples terms)."""
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise FormatError("TSV results need a header row")
    header = lines[0].split("\t")
    variables = []
    for name in header:
        if name == "":
            # A zero-variable result set has an empty header line.
            continue
        if not name.startswith("?") and not name.startswith("$"):
            raise FormatError(f"TSV header cells must start with '?': {name!r}")
        variables.append(Variable(name))
    bindings = []
    for line in lines[1:]:
        cells = line.split("\t") if variables else []
        if len(cells) > len(variables):
            raise FormatError(f"TSV row wider than the header: {line!r}")
        data = {}
        for variable, cell in zip(variables, cells, strict=False):
            if cell == "":
                continue
            data[variable] = parse_n3_term(cell)
        bindings.append(Binding(data))
    return ResultSet(variables, bindings)


_RESULT_PARSERS = {
    "json": parse_json,
    "xml": parse_xml,
    "csv": parse_csv,
    "tsv": parse_tsv,
}


def parse_results(text: str, format: str = "json") -> ResultSet | AskResult:
    """Parse a SELECT/ASK result document in the named format."""
    try:
        parser = _RESULT_PARSERS[format]
    except KeyError:
        raise FormatError(f"unsupported result format: {format!r}") from None
    return parser(text)
