"""Recursive-descent parser for SPARQL 1.0 queries.

Grammar coverage (the subset needed by the paper's examples plus what a
practical mediator encounters):

* ``SELECT [DISTINCT|REDUCED] (var+ | *) WHERE { ... }``
* ``ASK { ... }``
* ``CONSTRUCT { template } WHERE { ... }``
* prologue: ``PREFIX`` and ``BASE``
* group graph patterns with triple blocks, ``FILTER``, ``OPTIONAL``,
  ``UNION`` and nested groups
* triple patterns with ``;`` and ``,`` abbreviations, ``a``, blank node
  property lists and literals
* FILTER expressions: ``|| && = != < > <= >= + - * /``, unary ``!``/``-``,
  parentheses, the built-ins ``BOUND REGEX STR LANG LANGMATCHES DATATYPE
  isURI isIRI isLITERAL isBLANK sameTerm`` and extension-function calls by
  IRI
* solution modifiers: ``ORDER BY [ASC|DESC]``, ``LIMIT``, ``OFFSET``
"""

from __future__ import annotations


from ..rdf import (
    BNode,
    Literal,
    NamespaceManager,
    RDF,
    Term,
    Triple,
    URIRef,
    Variable,
    XSD,
    fresh_bnode,
)
from ..turtle.ntriples import unescape
from .ast import (
    AskQuery,
    BinaryExpression,
    ConstructQuery,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InlineData,
    OptionalPattern,
    OrderCondition,
    Prologue,
    Query,
    SelectQuery,
    SolutionModifiers,
    TermExpression,
    TriplesBlock,
    UnaryExpression,
    UnionPattern,
    VariableExpression,
)
from .tokenizer import SourceSpan, SparqlToken, tokenize_sparql

__all__ = ["SparqlParser", "SparqlParseError", "parse_query"]

_BUILTIN_FUNCTIONS = {
    "BOUND", "REGEX", "STR", "LANG", "LANGMATCHES", "DATATYPE",
    "ISURI", "ISIRI", "ISLITERAL", "ISBLANK", "SAMETERM",
}


class SparqlParseError(ValueError):
    """Raised when a query is syntactically invalid.

    ``line``/``column`` (1-based) and ``span`` locate the offending token
    when one is available, so callers can report exact source positions
    without re-parsing the rendered message.
    """

    def __init__(self, message: str, token: SparqlToken | None = None) -> None:
        location = f" (line {token.line}, column {token.column})" if token else ""
        super().__init__(message + location)
        self.token = token
        self.line: int | None = token.line if token else None
        self.column: int | None = token.column if token else None
        self.span: SourceSpan | None = token.span if token else None


class SparqlParser:
    """Parse SPARQL text into the AST of :mod:`repro.sparql.ast`."""

    def __init__(self, namespace_manager: NamespaceManager | None = None) -> None:
        self._seed_manager = namespace_manager

    def parse(self, text: str) -> Query:
        tokens = tokenize_sparql(text)
        state = _ParserState(tokens, self._seed_manager)
        query = state.parse_query()
        state.expect_eof()
        if len(tokens) > 1:  # more than the EOF token
            query.span = tokens[0].span.cover(tokens[-2].span)
        return query


class _ParserState:
    def __init__(self, tokens: list[SparqlToken], seed_manager: NamespaceManager | None) -> None:
        self._tokens = tokens
        self._index = 0
        manager = seed_manager.copy() if seed_manager else NamespaceManager(install_defaults=False)
        self.prologue = Prologue(namespace_manager=manager)

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, ahead: int = 0) -> SparqlToken:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> SparqlToken:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> SparqlToken:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            expected = f"{kind} {value}" if value else kind
            raise SparqlParseError(
                f"expected {expected}, found {token.kind} {token.value!r}", token
            )
        return token

    def _prev_span(self) -> SourceSpan:
        """The span of the most recently consumed token."""
        return self._tokens[max(self._index - 1, 0)].span

    def _at_keyword(self, *names: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in names

    def _accept_keyword(self, *names: str) -> SparqlToken | None:
        if self._at_keyword(*names):
            return self._next()
        return None

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise SparqlParseError(f"unexpected trailing input: {token.value!r}", token)

    # ------------------------------------------------------------------ #
    # Query forms
    # ------------------------------------------------------------------ #
    def parse_query(self) -> Query:
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            return self._parse_select()
        if self._at_keyword("ASK"):
            return self._parse_ask()
        if self._at_keyword("CONSTRUCT"):
            return self._parse_construct()
        token = self._peek()
        raise SparqlParseError(
            f"expected SELECT, ASK or CONSTRUCT, found {token.value!r}", token
        )

    def _parse_prologue(self) -> None:
        while True:
            if self._at_keyword("PREFIX"):
                self._next()
                pname = self._expect("PNAME")
                if not pname.value.endswith(":"):
                    raise SparqlParseError("PREFIX declaration must end with ':'", pname)
                iri = self._expect("IRIREF")
                self.prologue.bind(pname.value[:-1], iri.value[1:-1])
            elif self._at_keyword("BASE"):
                self._next()
                iri = self._expect("IRIREF")
                self.prologue.base = iri.value[1:-1]
            else:
                return

    def _parse_select(self) -> SelectQuery:
        self._expect("KEYWORD", "SELECT")
        modifiers = SolutionModifiers()
        if self._accept_keyword("DISTINCT"):
            modifiers.distinct = True
        elif self._accept_keyword("REDUCED"):
            modifiers.reduced = True

        projection: list[Variable] = []
        projection_spans: list[SourceSpan | None] = []
        if self._peek().kind == "STAR":
            self._next()
        else:
            while self._peek().kind == "VAR":
                token = self._next()
                projection.append(Variable(token.value))
                projection_spans.append(token.span)
            if not projection:
                raise SparqlParseError("SELECT requires '*' or at least one variable", self._peek())

        self._accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        self._parse_solution_modifiers(modifiers)
        return SelectQuery(self.prologue, projection, where, modifiers, projection_spans)

    def _parse_ask(self) -> AskQuery:
        self._expect("KEYWORD", "ASK")
        self._accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        return AskQuery(self.prologue, where)

    def _parse_construct(self) -> ConstructQuery:
        self._expect("KEYWORD", "CONSTRUCT")
        template = self._parse_construct_template()
        self._accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        modifiers = SolutionModifiers()
        self._parse_solution_modifiers(modifiers)
        return ConstructQuery(self.prologue, template, where, modifiers)

    def _parse_construct_template(self) -> list[Triple]:
        self._expect("LBRACE")
        block = TriplesBlock()
        while self._peek().kind != "RBRACE":
            self._parse_triples_same_subject(block)
            while self._peek().kind == "DOT":
                self._next()
        self._expect("RBRACE")
        return block.patterns

    # ------------------------------------------------------------------ #
    # Graph patterns
    # ------------------------------------------------------------------ #
    def _parse_group_graph_pattern(self) -> GroupGraphPattern:
        lbrace = self._expect("LBRACE")
        group = GroupGraphPattern()
        current_block: TriplesBlock | None = None

        while self._peek().kind != "RBRACE":
            token = self._peek()
            if token.kind == "KEYWORD" and token.value == "FILTER":
                self._next()
                expression = self._parse_filter_constraint()
                group.add(Filter(expression, span=token.span.cover(self._prev_span())))
                current_block = None
            elif token.kind == "KEYWORD" and token.value == "OPTIONAL":
                self._next()
                inner = self._parse_group_graph_pattern()
                group.add(OptionalPattern(inner, span=token.span.cover(self._prev_span())))
                current_block = None
            elif token.kind == "KEYWORD" and token.value == "VALUES":
                self._next()
                data = self._parse_inline_data()
                data.span = token.span.cover(self._prev_span())
                group.add(data)
                current_block = None
            elif token.kind == "LBRACE":
                nested = self._parse_group_graph_pattern()
                alternatives = [nested]
                while self._at_keyword("UNION"):
                    self._next()
                    alternatives.append(self._parse_group_graph_pattern())
                if len(alternatives) > 1:
                    group.add(
                        UnionPattern(alternatives, span=token.span.cover(self._prev_span()))
                    )
                else:
                    group.add(nested)
                current_block = None
            elif token.kind == "DOT":
                self._next()
            else:
                if current_block is None:
                    current_block = TriplesBlock()
                    group.add(current_block)
                self._parse_triples_same_subject(current_block)
                current_block.span = (
                    current_block.span.cover(self._prev_span())
                    if current_block.span
                    else token.span.cover(self._prev_span())
                )
                if self._peek().kind == "DOT":
                    self._next()
        rbrace = self._expect("RBRACE")
        group.span = lbrace.span.cover(rbrace.span)
        return group

    def _parse_filter_constraint(self) -> Expression:
        token = self._peek()
        if token.kind == "LPAREN":
            self._next()
            expression = self._parse_expression()
            self._expect("RPAREN")
            return expression
        if token.kind == "KEYWORD" and token.value in _BUILTIN_FUNCTIONS:
            return self._parse_builtin_call()
        if token.kind in ("IRIREF", "PNAME"):
            return self._parse_function_call()
        raise SparqlParseError("FILTER requires a bracketted expression or function call", token)

    # ------------------------------------------------------------------ #
    # Inline data (VALUES)
    # ------------------------------------------------------------------ #
    def _parse_inline_data(self) -> InlineData:
        """``VALUES ?x { ... }`` or ``VALUES (?x ?y) { (...) ... }``."""
        token = self._peek()
        if token.kind == "VAR":
            self._next()
            data = InlineData([Variable(token.value)])
            self._expect("LBRACE")
            while self._peek().kind != "RBRACE":
                data.add_row((self._parse_data_value(),))
            self._expect("RBRACE")
            return data
        self._expect("LPAREN")
        columns: list[Variable] = []
        while self._peek().kind == "VAR":
            columns.append(Variable(self._next().value))
        self._expect("RPAREN")
        data = InlineData(columns)
        self._expect("LBRACE")
        while self._peek().kind != "RBRACE":
            self._expect("LPAREN")
            row: list[Term | None] = []
            while self._peek().kind != "RPAREN":
                row.append(self._parse_data_value())
            self._expect("RPAREN")
            try:
                data.add_row(row)
            except ValueError as exc:
                raise SparqlParseError(str(exc), self._peek()) from exc
        self._expect("RBRACE")
        return data

    def _parse_data_value(self) -> Term | None:
        """One VALUES cell: an IRI, a literal, or ``UNDEF`` (``None``)."""
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == "UNDEF":
            self._next()
            return None
        if token.kind == "IRIREF":
            self._next()
            return self._resolve_iri(token)
        if token.kind == "PNAME":
            self._next()
            return self._expand_pname(token)
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE"):
            return self._parse_literal()
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self._next()
            return Literal(token.value.lower(), datatype=XSD.boolean)
        raise SparqlParseError(
            f"unexpected token in VALUES data: {token.value!r}", token
        )

    # ------------------------------------------------------------------ #
    # Triple patterns
    # ------------------------------------------------------------------ #
    def _parse_triples_same_subject(self, block: TriplesBlock) -> None:
        start = self._peek().span
        subject = self._parse_term(position="subject", block=block)
        self._parse_property_list(subject, block, start)

    def _parse_property_list(
        self, subject: Term, block: TriplesBlock, start: SourceSpan | None = None
    ) -> None:
        if start is None:
            start = self._peek().span
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(position="object", block=block)
                block.add(Triple(subject, predicate, obj), span=start.cover(self._prev_span()))
                if self._peek().kind == "COMMA":
                    self._next()
                    continue
                break
            if self._peek().kind == "SEMICOLON":
                self._next()
                while self._peek().kind == "SEMICOLON":
                    self._next()
                nxt = self._peek()
                if nxt.kind in ("DOT", "RBRACE", "RBRACKET") or nxt.kind == "EOF":
                    return
                continue
            return

    def _parse_verb(self) -> Term:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == "A":
            self._next()
            return RDF.type
        if token.kind == "VAR":
            self._next()
            return Variable(token.value)
        term = self._parse_iri()
        return term

    def _parse_term(self, position: str, block: TriplesBlock | None = None) -> Term:
        token = self._peek()
        if token.kind == "VAR":
            self._next()
            return Variable(token.value)
        if token.kind == "IRIREF":
            self._next()
            return self._resolve_iri(token)
        if token.kind == "PNAME":
            self._next()
            return self._expand_pname(token)
        if token.kind == "BLANK_NODE":
            self._next()
            return BNode(token.value)
        if token.kind == "LBRACKET":
            return self._parse_blank_node_property_list(block)
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE"):
            if position != "object":
                raise SparqlParseError(f"literal not allowed in {position} position", token)
            return self._parse_literal()
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self._next()
            return Literal(token.value.lower(), datatype=XSD.boolean)
        raise SparqlParseError(f"unexpected token in triple pattern: {token.value!r}", token)

    def _parse_blank_node_property_list(self, block: TriplesBlock | None) -> Term:
        self._expect("LBRACKET")
        node = fresh_bnode("anon")
        if self._peek().kind != "RBRACKET":
            if block is None:
                raise SparqlParseError("blank node property list not allowed here", self._peek())
            self._parse_property_list(node, block)
        self._expect("RBRACKET")
        return node

    def _parse_literal(self) -> Literal:
        token = self._next()
        if token.kind == "STRING":
            lexical = self._strip_quotes(token.value)
            nxt = self._peek()
            if nxt.kind == "LANGTAG":
                self._next()
                return Literal(lexical, lang=nxt.value[1:])
            if nxt.kind == "DATATYPE_MARKER":
                self._next()
                dt_token = self._next()
                if dt_token.kind == "IRIREF":
                    return Literal(lexical, datatype=self._resolve_iri(dt_token))
                if dt_token.kind == "PNAME":
                    return Literal(lexical, datatype=self._expand_pname(dt_token))
                raise SparqlParseError("datatype must be an IRI", dt_token)
            return Literal(lexical)
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD.double)
        raise SparqlParseError(f"not a literal: {token.value!r}", token)

    @staticmethod
    def _strip_quotes(raw: str) -> str:
        if raw.startswith('"""') or raw.startswith("'''"):
            return unescape(raw[3:-3])
        return unescape(raw[1:-1])

    def _parse_iri(self) -> URIRef:
        token = self._next()
        if token.kind == "IRIREF":
            return self._resolve_iri(token)
        if token.kind == "PNAME":
            return self._expand_pname(token)
        raise SparqlParseError(f"expected an IRI, found {token.value!r}", token)

    def _resolve_iri(self, token: SparqlToken) -> URIRef:
        value = token.value[1:-1]
        if self.prologue.base:
            return URIRef(value, base=self.prologue.base)
        return URIRef(value)

    def _expand_pname(self, token: SparqlToken) -> URIRef:
        prefix, _, local = token.value.partition(":")
        namespace = self.prologue.namespace_manager.namespace(prefix)
        if namespace is None:
            raise SparqlParseError(f"undeclared prefix {prefix!r}", token)
        return URIRef(namespace + local)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._peek().kind == "OR":
            self._next()
            left = BinaryExpression("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self._peek().kind == "AND":
            self._next()
            left = BinaryExpression("&&", left, self._parse_relational())
        return left

    _RELATIONAL = {"EQ": "=", "NEQ": "!=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">="}

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        kind = self._peek().kind
        if kind in self._RELATIONAL:
            self._next()
            right = self._parse_additive()
            return BinaryExpression(self._RELATIONAL[kind], left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().kind in ("PLUS", "MINUS"):
            operator = "+" if self._next().kind == "PLUS" else "-"
            left = BinaryExpression(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._peek().kind in ("STAR", "SLASH"):
            operator = "*" if self._next().kind == "STAR" else "/"
            left = BinaryExpression(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "BANG":
            self._next()
            return UnaryExpression("!", self._parse_unary())
        if token.kind == "MINUS":
            self._next()
            return UnaryExpression("-", self._parse_unary())
        if token.kind == "PLUS":
            self._next()
            return UnaryExpression("+", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "LPAREN":
            self._next()
            expression = self._parse_expression()
            self._expect("RPAREN")
            return expression
        if token.kind == "VAR":
            self._next()
            return VariableExpression(Variable(token.value))
        if token.kind == "KEYWORD" and token.value in _BUILTIN_FUNCTIONS:
            return self._parse_builtin_call()
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self._next()
            return TermExpression(Literal(token.value.lower(), datatype=XSD.boolean))
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE"):
            return TermExpression(self._parse_literal())
        if token.kind in ("IRIREF", "PNAME"):
            # Either an extension function call or a plain IRI constant.
            if self._peek(1).kind == "LPAREN":
                return self._parse_function_call()
            self._next()
            if token.kind == "IRIREF":
                return TermExpression(self._resolve_iri(token))
            return TermExpression(self._expand_pname(token))
        raise SparqlParseError(f"unexpected token in expression: {token.value!r}", token)

    def _parse_builtin_call(self) -> Expression:
        name = self._next().value
        self._expect("LPAREN")
        arguments: list[Expression] = []
        if self._peek().kind != "RPAREN":
            arguments.append(self._parse_expression())
            while self._peek().kind == "COMMA":
                self._next()
                arguments.append(self._parse_expression())
        self._expect("RPAREN")
        return FunctionCall(name, arguments)

    def _parse_function_call(self) -> Expression:
        token = self._next()
        if token.kind == "IRIREF":
            function_iri = self._resolve_iri(token)
        else:
            function_iri = self._expand_pname(token)
        self._expect("LPAREN")
        arguments: list[Expression] = []
        if self._peek().kind != "RPAREN":
            arguments.append(self._parse_expression())
            while self._peek().kind == "COMMA":
                self._next()
                arguments.append(self._parse_expression())
        self._expect("RPAREN")
        return FunctionCall(str(function_iri), arguments)

    # ------------------------------------------------------------------ #
    # Solution modifiers
    # ------------------------------------------------------------------ #
    def _parse_solution_modifiers(self, modifiers: SolutionModifiers) -> None:
        if self._at_keyword("ORDER"):
            self._next()
            self._expect("KEYWORD", "BY")
            while True:
                token = self._peek()
                if token.kind == "KEYWORD" and token.value in ("ASC", "DESC"):
                    self._next()
                    descending = token.value == "DESC"
                    self._expect("LPAREN")
                    expression = self._parse_expression()
                    self._expect("RPAREN")
                    modifiers.order_by.append(
                        OrderCondition(
                            expression, descending, span=token.span.cover(self._prev_span())
                        )
                    )
                elif token.kind == "VAR":
                    self._next()
                    modifiers.order_by.append(
                        OrderCondition(
                            VariableExpression(Variable(token.value)), span=token.span
                        )
                    )
                elif token.kind == "LPAREN":
                    self._next()
                    expression = self._parse_expression()
                    self._expect("RPAREN")
                    modifiers.order_by.append(
                        OrderCondition(expression, span=token.span.cover(self._prev_span()))
                    )
                else:
                    break
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self._at_keyword("LIMIT"):
                self._next()
                modifiers.limit = int(self._expect("INTEGER").value)
            elif self._at_keyword("OFFSET"):
                self._next()
                modifiers.offset = int(self._expect("INTEGER").value)


def parse_query(text: str, namespace_manager: NamespaceManager | None = None) -> Query:
    """Parse SPARQL text into a :class:`Query` AST."""
    return SparqlParser(namespace_manager).parse(text)
