"""SPARQL substrate: tokenizer, parser, AST, algebra, evaluator, results.

This package substitutes for the Jena ARQ library used by the original
system (see DESIGN.md): it gives the rewriting engine access to the query
structure (Section 3.1's anatomy — result form, basic graph patterns and
filters) and lets the federation layer execute queries against in-memory
graphs standing in for remote endpoints.
"""

from .ast import (
    AskQuery,
    BinaryExpression,
    ConstructQuery,
    ExistsExpression,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InlineData,
    OptionalPattern,
    OrderCondition,
    Prologue,
    Query,
    SelectQuery,
    SolutionModifiers,
    TermExpression,
    TriplesBlock,
    UnaryExpression,
    UnionPattern,
    VariableExpression,
)
from .algebra import (
    AlgebraBGP,
    AlgebraDistinct,
    AlgebraFilter,
    AlgebraJoin,
    AlgebraLeftJoin,
    AlgebraNode,
    AlgebraOrderBy,
    AlgebraProject,
    AlgebraSlice,
    AlgebraTable,
    AlgebraUnion,
    algebra_to_group,
    to_sexpr,
    translate_group,
    translate_query,
)
from .evaluator import (
    ENGINES,
    QueryEvaluator,
    evaluate_group,
    evaluate_query,
    match_bgp,
    ordered_bgp_patterns,
)
from .exec import (
    RUN_EVENTS_ENV,
    ExecConfig,
    QueryRunEvent,
    compile_naive_query,
    compile_planner_query,
)
from .plan import (
    CardinalityEstimator,
    QueryPlan,
    QueryPlanner,
    explain_query,
    plan_query,
)
from .expressions import (
    ExpressionError,
    effective_boolean_value,
    evaluate_expression,
    expression_satisfied,
)
from .formats import (
    ASK_MEDIA_TYPES,
    FormatError,
    GRAPH_MEDIA_TYPES,
    RESULT_MEDIA_TYPES,
    negotiate,
    parse_results,
    write_results,
)
from .analysis import (
    AnalysisResult,
    Diagnostic,
    DIAGNOSTIC_CODES,
    FederationAnalysis,
    QueryAnalysisError,
    analyze_federation,
    analyze_query,
    prune_query,
    render_diagnostics,
)
from .parser import SparqlParseError, SparqlParser, parse_query
from .results import AskResult, Binding, ResultSet, TermSerializationError
from .serializer import serialize_expression, serialize_pattern_group, serialize_query
from .tokenizer import SourceSpan, SparqlLexError, SparqlToken, tokenize_sparql

__all__ = [
    # parsing
    "SparqlParser", "SparqlParseError", "parse_query",
    "SparqlToken", "SparqlLexError", "tokenize_sparql", "SourceSpan",
    # static analysis
    "Diagnostic", "AnalysisResult", "FederationAnalysis", "QueryAnalysisError",
    "DIAGNOSTIC_CODES", "analyze_query", "analyze_federation", "prune_query",
    "render_diagnostics",
    # AST
    "Query", "SelectQuery", "AskQuery", "ConstructQuery",
    "Prologue", "SolutionModifiers", "OrderCondition",
    "GroupGraphPattern", "TriplesBlock", "Filter", "OptionalPattern", "UnionPattern",
    "InlineData",
    "Expression", "TermExpression", "VariableExpression", "BinaryExpression",
    "UnaryExpression", "FunctionCall", "ExistsExpression",
    # algebra
    "AlgebraNode", "AlgebraBGP", "AlgebraJoin", "AlgebraLeftJoin", "AlgebraUnion",
    "AlgebraFilter", "AlgebraProject", "AlgebraDistinct", "AlgebraOrderBy", "AlgebraSlice",
    "AlgebraTable",
    "translate_query", "translate_group", "algebra_to_group", "to_sexpr",
    # evaluation
    "ENGINES", "QueryEvaluator", "evaluate_query", "evaluate_group", "match_bgp",
    "ordered_bgp_patterns",
    # batched execution core
    "ExecConfig", "QueryRunEvent", "RUN_EVENTS_ENV",
    "compile_planner_query", "compile_naive_query",
    "ExpressionError", "evaluate_expression", "expression_satisfied",
    "effective_boolean_value",
    # planning
    "QueryPlanner", "QueryPlan", "CardinalityEstimator",
    "plan_query", "explain_query",
    # results
    "Binding", "ResultSet", "AskResult", "TermSerializationError",
    # wire formats
    "FormatError", "write_results", "parse_results", "negotiate",
    "RESULT_MEDIA_TYPES", "ASK_MEDIA_TYPES", "GRAPH_MEDIA_TYPES",
    # serialisation
    "serialize_query", "serialize_expression", "serialize_pattern_group",
]
