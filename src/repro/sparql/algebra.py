"""SPARQL algebra representation.

Section 4 of the paper proposes moving the rewriting from the syntactic
BGP level to the *SPARQL algebra* (citing Cyganiak's relational algebra for
SPARQL), because the algebra offers "an homogeneous representation of the
whole query (LISP like structures)": graph patterns and FILTER constraints
live in one tree and can be rewritten uniformly.  This module provides that
representation:

* algebra operators: :class:`AlgebraBGP`, :class:`AlgebraJoin`,
  :class:`AlgebraLeftJoin`, :class:`AlgebraUnion`, :class:`AlgebraFilter`,
  :class:`AlgebraProject`, :class:`AlgebraDistinct`, :class:`AlgebraOrderBy`,
  :class:`AlgebraSlice`,
* :func:`translate_query` / :func:`translate_group` -- AST to algebra
  (following the SPARQL 1.0 translation rules, simplified),
* :func:`algebra_to_group` -- algebra back to an AST group graph pattern so
  a rewritten algebra tree can be serialised and executed,
* :func:`to_sexpr` -- the LISP-like rendering used in logs and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Sequence

from ..rdf import Triple, Variable
from .ast import (
    Expression,
    Filter,
    GroupGraphPattern,
    InlineData,
    OptionalPattern,
    OrderCondition,
    Query,
    SelectQuery,
    TriplesBlock,
    UnionPattern,
)
from .serializer import serialize_expression

__all__ = [
    "AlgebraNode", "AlgebraBGP", "AlgebraJoin", "AlgebraLeftJoin",
    "AlgebraUnion", "AlgebraFilter", "AlgebraProject", "AlgebraDistinct",
    "AlgebraOrderBy", "AlgebraSlice", "AlgebraTable",
    "translate_query", "translate_group", "algebra_to_group", "to_sexpr",
]


class AlgebraNode:
    """Base class of algebra operators."""

    def children(self) -> Sequence[AlgebraNode]:
        return ()

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for child in self.children():
            result |= child.variables()
        return result

    def walk(self) -> Iterator[AlgebraNode]:
        """Depth-first pre-order traversal of the operator tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def transform(self, func: Callable[[AlgebraNode], AlgebraNode | None]) -> AlgebraNode:
        """Bottom-up rewriting: rebuild children then apply ``func``.

        ``func`` returns either a replacement node or ``None`` to keep the
        (rebuilt) node unchanged.
        """
        rebuilt = self._rebuild([child.transform(func) for child in self.children()])
        replacement = func(rebuilt)
        return replacement if replacement is not None else rebuilt

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return self


@dataclass
class AlgebraBGP(AlgebraNode):
    """A Basic Graph Pattern leaf."""

    patterns: list[Triple] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result


@dataclass
class AlgebraTable(AlgebraNode):
    """An inline solution table (the algebra form of a ``VALUES`` block).

    ``rows`` are tuples aligned with ``columns``; ``None`` is ``UNDEF``.
    """

    columns: list[Variable] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        return set(self.columns)


@dataclass
class AlgebraJoin(AlgebraNode):
    """Join(left, right)."""

    left: AlgebraNode
    right: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.left, self.right)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraJoin(children[0], children[1])


@dataclass
class AlgebraLeftJoin(AlgebraNode):
    """LeftJoin(left, right, expr) — the algebra form of OPTIONAL."""

    left: AlgebraNode
    right: AlgebraNode
    expression: Expression | None = None

    def children(self) -> Sequence[AlgebraNode]:
        return (self.left, self.right)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraLeftJoin(children[0], children[1], self.expression)


@dataclass
class AlgebraUnion(AlgebraNode):
    """Union(left, right)."""

    left: AlgebraNode
    right: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.left, self.right)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraUnion(children[0], children[1])


@dataclass
class AlgebraFilter(AlgebraNode):
    """Filter(expr, child)."""

    expression: Expression
    child: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def variables(self) -> set[Variable]:
        return self.child.variables() | self.expression.variables()

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraFilter(self.expression, children[0])


@dataclass
class AlgebraProject(AlgebraNode):
    """Project(vars, child)."""

    projection: list[Variable]
    child: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraProject(list(self.projection), children[0])


@dataclass
class AlgebraDistinct(AlgebraNode):
    """Distinct(child)."""

    child: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraDistinct(children[0])


@dataclass
class AlgebraOrderBy(AlgebraNode):
    """OrderBy(conditions, child)."""

    conditions: list[OrderCondition]
    child: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraOrderBy(list(self.conditions), children[0])


@dataclass
class AlgebraSlice(AlgebraNode):
    """Slice(offset, limit, child)."""

    offset: int | None
    limit: int | None
    child: AlgebraNode

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def _rebuild(self, children: list[AlgebraNode]) -> AlgebraNode:
        return AlgebraSlice(self.offset, self.limit, children[0])


_EMPTY_BGP = AlgebraBGP([])


# --------------------------------------------------------------------------- #
# AST -> algebra
# --------------------------------------------------------------------------- #
def translate_group(group: GroupGraphPattern) -> AlgebraNode:
    """Translate a group graph pattern following the SPARQL translation rules.

    Filters of a group scope over the whole group: they are collected and
    wrapped around the joined pattern at the end (this is exactly the
    behaviour that makes FILTER-expressed constraints invisible to BGP-only
    rewriting, Experiment E7).
    """
    current: AlgebraNode | None = None
    filters: list[Expression] = []

    for element in group.elements:
        if isinstance(element, Filter):
            filters.append(element.expression)
            continue
        translated = _translate_element(element)
        if isinstance(element, OptionalPattern):
            base = current if current is not None else AlgebraBGP([])
            expression = None
            inner = translated
            if isinstance(translated, AlgebraFilter):
                expression = translated.expression
                inner = translated.child
            current = AlgebraLeftJoin(base, inner, expression)
        elif current is None:
            current = translated
        else:
            current = AlgebraJoin(current, translated)

    if current is None:
        current = AlgebraBGP([])
    for expression in filters:
        current = AlgebraFilter(expression, current)
    return current


def _translate_element(element) -> AlgebraNode:
    if isinstance(element, TriplesBlock):
        return AlgebraBGP(list(element.patterns))
    if isinstance(element, InlineData):
        return AlgebraTable(list(element.columns), list(element.rows))
    if isinstance(element, GroupGraphPattern):
        return translate_group(element)
    if isinstance(element, OptionalPattern):
        return translate_group(element.group)
    if isinstance(element, UnionPattern):
        nodes = [translate_group(alternative) for alternative in element.alternatives]
        result = nodes[0]
        for node in nodes[1:]:
            result = AlgebraUnion(result, node)
        return result
    raise TypeError(f"unsupported pattern element: {element!r}")


def translate_query(query: Query) -> AlgebraNode:
    """Translate a full query (pattern + modifiers) into an algebra tree."""
    node = translate_group(query.where)
    modifiers = query.modifiers
    if modifiers.order_by:
        node = AlgebraOrderBy(list(modifiers.order_by), node)
    if isinstance(query, SelectQuery):
        node = AlgebraProject(query.effective_projection(), node)
    if modifiers.distinct:
        node = AlgebraDistinct(node)
    if modifiers.limit is not None or modifiers.offset is not None:
        node = AlgebraSlice(modifiers.offset, modifiers.limit, node)
    return node


# --------------------------------------------------------------------------- #
# Algebra -> AST group (for serialisation / execution of rewritten trees)
# --------------------------------------------------------------------------- #
def algebra_to_group(node: AlgebraNode) -> GroupGraphPattern:
    """Convert a pattern-level algebra tree back into an AST group."""
    group = GroupGraphPattern()
    _emit(node, group)
    return group


def _emit(node: AlgebraNode, group: GroupGraphPattern) -> None:
    if isinstance(node, AlgebraBGP):
        if node.patterns:
            group.add(TriplesBlock(list(node.patterns)))
        return
    if isinstance(node, AlgebraTable):
        group.add(InlineData(list(node.columns), list(node.rows)))
        return
    if isinstance(node, AlgebraJoin):
        _emit(node.left, group)
        _emit(node.right, group)
        return
    if isinstance(node, AlgebraLeftJoin):
        _emit(node.left, group)
        optional_group = algebra_to_group(node.right)
        if node.expression is not None:
            optional_group.add(Filter(node.expression))
        group.add(OptionalPattern(optional_group))
        return
    if isinstance(node, AlgebraUnion):
        alternatives = [algebra_to_group(node.left), algebra_to_group(node.right)]
        group.add(UnionPattern(alternatives))
        return
    if isinstance(node, AlgebraFilter):
        _emit(node.child, group)
        group.add(Filter(node.expression))
        return
    if isinstance(node, (AlgebraProject, AlgebraDistinct, AlgebraOrderBy, AlgebraSlice)):
        _emit(node.children()[0], group)
        return
    raise TypeError(f"cannot convert algebra node to pattern: {node!r}")


# --------------------------------------------------------------------------- #
# LISP-like rendering
# --------------------------------------------------------------------------- #
def to_sexpr(node: AlgebraNode, indent: int = 0) -> str:
    """Render the algebra tree as an s-expression (ARQ ``--print=op`` style)."""
    pad = "  " * indent
    if isinstance(node, AlgebraBGP):
        triples = " ".join(f"({t.subject.n3()} {t.predicate.n3()} {t.object.n3()})" for t in node.patterns)
        return f"{pad}(bgp {triples})"
    if isinstance(node, AlgebraTable):
        variables = " ".join(f"?{v.name}" for v in node.columns)
        return f"{pad}(table ({variables}) {len(node.rows)} rows)"
    if isinstance(node, AlgebraJoin):
        return f"{pad}(join\n{to_sexpr(node.left, indent + 1)}\n{to_sexpr(node.right, indent + 1)})"
    if isinstance(node, AlgebraLeftJoin):
        expr = serialize_expression(node.expression) if node.expression is not None else "true"
        return (f"{pad}(leftjoin [{expr}]\n{to_sexpr(node.left, indent + 1)}\n"
                f"{to_sexpr(node.right, indent + 1)})")
    if isinstance(node, AlgebraUnion):
        return f"{pad}(union\n{to_sexpr(node.left, indent + 1)}\n{to_sexpr(node.right, indent + 1)})"
    if isinstance(node, AlgebraFilter):
        return f"{pad}(filter [{serialize_expression(node.expression)}]\n{to_sexpr(node.child, indent + 1)})"
    if isinstance(node, AlgebraProject):
        variables = " ".join(f"?{v.name}" for v in node.projection)
        return f"{pad}(project ({variables})\n{to_sexpr(node.child, indent + 1)})"
    if isinstance(node, AlgebraDistinct):
        return f"{pad}(distinct\n{to_sexpr(node.child, indent + 1)})"
    if isinstance(node, AlgebraOrderBy):
        return f"{pad}(order\n{to_sexpr(node.child, indent + 1)})"
    if isinstance(node, AlgebraSlice):
        return f"{pad}(slice {node.offset} {node.limit}\n{to_sexpr(node.child, indent + 1)})"
    raise TypeError(f"unsupported algebra node: {node!r}")
