"""Materialisation (forward-chaining) integration baseline.

Section 2 of the paper argues that the mainstream alternative to query
rewriting — treating ontology alignments as logical axioms and *reasoning*
over the combined data — "does not scale well and data repositories cannot
be integrated relying on reasoning on an overall mediating ontology",
because the inference models grow with the size of the data.

To give that argument a measurable counterpart, this module implements the
alternative: a forward-chaining integrator that materialises every target
repository into the source vocabulary ahead of query time.

* Each entity alignment ``LHS <- RHS`` is applied *right-to-left* as a data
  rule: conjunctive RHS matches over the target data produce LHS triples in
  the source vocabulary.
* ``sameas`` functional dependencies are inverted through the co-reference
  service: a value bound on the target side is mapped back to its source
  URI-space equivalent (other functions are not invertible in general and
  are skipped, which is precisely one of the weaknesses of the
  materialisation approach the paper alludes to).
* Instance URIs are finally canonicalised into the source URI space using
  the owl:sameAs closure.

The integrator's cost is proportional to the *data* size, whereas query
rewriting's cost depends only on the query and alignment KB size —
Experiment E5 measures exactly that contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from collections.abc import Iterable, Sequence

from ..alignment import EntityAlignment, SAMEAS_FUNCTION
from ..coreference import SameAsService
from ..rdf import Graph, Term, Triple, URIRef, Variable
from ..sparql import Binding, match_bgp

__all__ = ["MaterializationStatistics", "MaterializationIntegrator"]


@dataclass
class MaterializationStatistics:
    """Cost accounting of one materialisation run."""

    input_triples: int = 0
    derived_triples: int = 0
    rule_applications: int = 0
    sameas_translations: int = 0
    elapsed_seconds: float = 0.0


class MaterializationIntegrator:
    """Materialise heterogeneous repositories into the source vocabulary."""

    def __init__(
        self,
        alignments: Sequence[EntityAlignment],
        sameas_service: SameAsService | None = None,
        source_uri_pattern: str | None = None,
    ) -> None:
        self.alignments = list(alignments)
        self.sameas_service = sameas_service or SameAsService()
        self.source_uri_pattern = source_uri_pattern

    # ------------------------------------------------------------------ #
    # Integration
    # ------------------------------------------------------------------ #
    def integrate(self, graphs: Iterable[Graph]) -> tuple[Graph, MaterializationStatistics]:
        """Derive a source-vocabulary graph from the given target graphs."""
        statistics = MaterializationStatistics()
        start = perf_counter()
        merged = Graph()
        for graph in graphs:
            statistics.input_triples += len(graph)
            for alignment in self.alignments:
                statistics.derived_triples += self._apply_alignment(alignment, graph, merged,
                                                                    statistics)
        statistics.elapsed_seconds = perf_counter() - start
        return merged, statistics

    def _apply_alignment(
        self,
        alignment: EntityAlignment,
        source_graph: Graph,
        output: Graph,
        statistics: MaterializationStatistics,
    ) -> int:
        derived = 0
        inverse_fd = self._invertible_dependencies(alignment)
        for binding in match_bgp(alignment.rhs, source_graph):
            statistics.rule_applications += 1
            triple = self._instantiate_lhs(alignment, binding, inverse_fd, statistics)
            if triple is None:
                continue
            if triple not in output:
                output.add(triple)
                derived += 1
        return derived

    def _invertible_dependencies(self, alignment: EntityAlignment) -> dict[Variable, Variable]:
        """Map RHS-side FD targets back to the LHS variable they determine.

        Only ``sameas`` dependencies of the shape ``?rhs = sameas(?lhs, re)``
        are invertible: knowing the RHS value, the LHS value is the
        equivalent URI in the source URI space.
        """
        inverse: dict[Variable, Variable] = {}
        for dependency in alignment.functional_dependencies:
            if dependency.function != SAMEAS_FUNCTION:
                continue
            if not dependency.parameters:
                continue
            first = dependency.parameters[0]
            if isinstance(first, Variable):
                inverse[dependency.variable] = first
        return inverse

    def _instantiate_lhs(
        self,
        alignment: EntityAlignment,
        binding: Binding,
        inverse_fd: dict[Variable, Variable],
        statistics: MaterializationStatistics,
    ) -> Triple | None:
        values: dict[Variable, Term] = {}
        # Direct bindings for LHS variables shared with the RHS.
        for variable in alignment.lhs_variables():
            term = binding.get_term(variable)
            if term is not None:
                values[variable] = term
        # Inverted sameas dependencies: RHS value -> source-space URI.
        for rhs_variable, lhs_variable in inverse_fd.items():
            term = binding.get_term(rhs_variable)
            if term is None or lhs_variable in values:
                continue
            values[lhs_variable] = self._to_source_space(term, statistics)

        terms = []
        for term in alignment.lhs:
            if isinstance(term, Variable):
                value = values.get(term)
                if value is None:
                    return None
                terms.append(self._to_source_space(value, statistics))
            else:
                terms.append(term)
        try:
            return Triple(*terms)
        except TypeError:
            return None

    def _to_source_space(self, term: Term, statistics: MaterializationStatistics) -> Term:
        if isinstance(term, URIRef) and self.source_uri_pattern is not None:
            translated = self.sameas_service.lookup(term, self.source_uri_pattern)
            if translated is not None:
                statistics.sameas_translations += 1
                return translated
        return term
