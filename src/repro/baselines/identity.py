"""No-rewriting baseline.

The simplest possible "integration" strategy — and the implicit comparison
point of the whole paper — is to send the source query verbatim to every
endpoint.  Because each repository uses its own vocabulary and URI space,
the query only matches on repositories sharing the source schema, so the
contribution of heterogeneous datasets to recall is (near) zero.  The
baseline exists so Experiments E5/E6 can quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..federation import DatasetRegistry, EndpointError
from ..rdf import URIRef, Variable
from ..sparql import Binding, Query, ResultSet, parse_query

__all__ = ["IdentityBaselineResult", "IdentityFederation"]


@dataclass
class IdentityBaselineResult:
    """Per-dataset and merged results of the no-rewriting baseline."""

    variables: list[Variable]
    per_dataset_rows: dict[URIRef, int] = field(default_factory=dict)
    errors: dict[URIRef, str] = field(default_factory=dict)
    merged_bindings: list[Binding] = field(default_factory=list)

    def merged(self) -> ResultSet:
        return ResultSet(self.variables, self.merged_bindings)

    def distinct_values(self, variable: Variable | str) -> set:
        return self.merged().distinct_values(variable)


class IdentityFederation:
    """Run the *unrewritten* query over every registered dataset."""

    def __init__(self, registry: DatasetRegistry) -> None:
        self.registry = registry

    def execute(
        self,
        query: Query | str,
        datasets: Sequence[URIRef] | None = None,
    ) -> IdentityBaselineResult:
        if isinstance(query, str):
            query = parse_query(query)
        projection = getattr(query, "projection", None) or sorted(query.variables(), key=str)
        result = IdentityBaselineResult(variables=list(projection))
        targets = self.registry.datasets() if datasets is None else [
            self.registry.get(uri) for uri in datasets
        ]
        seen = set()
        for target in targets:
            try:
                rows = target.endpoint.select(query)
            except EndpointError as exc:
                result.errors[target.uri] = str(exc)
                continue
            result.per_dataset_rows[target.uri] = len(rows)
            for binding in rows:
                key = frozenset(binding.as_dict().items())
                if key not in seen:
                    seen.add(key)
                    result.merged_bindings.append(binding)
        return result
