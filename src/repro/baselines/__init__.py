"""Comparison baselines: no-rewriting federation and materialisation."""

from .identity import IdentityBaselineResult, IdentityFederation
from .materialization import MaterializationIntegrator, MaterializationStatistics

__all__ = [
    "IdentityFederation",
    "IdentityBaselineResult",
    "MaterializationIntegrator",
    "MaterializationStatistics",
]
