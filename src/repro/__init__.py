"""repro — SPARQL query rewriting for data integration over Linked Data.

A from-scratch Python reproduction of Correndo et al., *SPARQL Query
Rewriting for Implementing Data Integration over Linked Data* (EDBT 2010).

The package is organised bottom-up:

* :mod:`repro.rdf` — RDF data model (terms, triples, graphs, reification).
* :mod:`repro.turtle` — Turtle / N-Triples parsers and serialisers.
* :mod:`repro.sparql` — SPARQL parser, algebra, evaluator and serialiser.
* :mod:`repro.coreference` — local owl:sameAs (sameas.org) service.
* :mod:`repro.alignment` — the paper's alignment model (OA/EA/FD), function
  registry, RDF encoding and alignment KB.
* :mod:`repro.core` — the rewriting algorithms (the paper's contribution).
* :mod:`repro.federation` — endpoints, voiD registry, federated execution,
  mediator service facade.
* :mod:`repro.datasets` — synthetic RKB / KISTI / DBpedia scenario.
* :mod:`repro.baselines` — no-rewriting and materialisation baselines.

Quickstart::

    from repro.datasets import build_resist_scenario

    scenario = build_resist_scenario()
    response = scenario.service.translate_and_run(
        '''PREFIX akt:<http://www.aktors.org/ontology/portal#>
           SELECT ?t WHERE { ?p akt:has-title ?t }''',
        scenario.kisti_dataset,
    )
    print(response.translation.translated_query)
"""

from .alignment import (
    AlignmentStore,
    EntityAlignment,
    FunctionRegistry,
    FunctionalDependency,
    OntologyAlignment,
    default_registry,
)
from .coreference import SameAsService
from .core import (
    AlgebraQueryRewriter,
    FilterAwareQueryRewriter,
    GraphPatternRewriter,
    MediationResult,
    Mediator,
    QueryRewriter,
    RewriteReport,
    TargetProfile,
)
from .federation import (
    DatasetDescription,
    DatasetRegistry,
    FederatedQueryEngine,
    LocalSparqlEndpoint,
    MediatorService,
    shard_graph,
)
from .rdf import (
    BNode,
    Graph,
    GraphView,
    Literal,
    MemoryStore,
    Namespace,
    SegmentStore,
    Store,
    Triple,
    URIRef,
    Variable,
    open_graph,
    open_store,
)
from .sparql import QueryEvaluator, parse_query, serialize_query

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # rdf
    "URIRef", "Literal", "BNode", "Variable", "Triple", "Graph", "GraphView",
    "Namespace",
    # storage
    "Store", "MemoryStore", "SegmentStore", "open_store", "open_graph",
    # sparql
    "parse_query", "serialize_query", "QueryEvaluator",
    # alignment
    "EntityAlignment", "FunctionalDependency", "OntologyAlignment",
    "AlignmentStore", "FunctionRegistry", "default_registry",
    # coreference
    "SameAsService",
    # core
    "GraphPatternRewriter", "QueryRewriter", "FilterAwareQueryRewriter",
    "AlgebraQueryRewriter", "Mediator", "MediationResult", "TargetProfile",
    "RewriteReport",
    # federation
    "LocalSparqlEndpoint", "DatasetDescription", "DatasetRegistry",
    "FederatedQueryEngine", "MediatorService", "shard_graph",
]
