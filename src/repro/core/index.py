"""Indexed alignment matching: pattern index and compiled rewrite rules.

The reference implementation of the paper's matching phase
(:func:`repro.core.matcher.find_matches`) linearly scans the whole
alignment KB for every query triple, so rewriting a Basic Graph Pattern
costs ``O(|BGP| x |alignments|)``.  That is exactly the "grows mildly with
KB size" curve Experiment E5 measures — and exactly what the paper's
scalability argument (rewriting "only touches the query") says should not
happen.

This module removes the scan without changing a single produced rewrite:

* :class:`PatternIndex` buckets alignment heads by their ground predicate
  (with a dedicated per-class sub-index for ``rdf:type`` heads and a small
  fallback bucket for variable-predicate heads), so the candidate set for
  one query triple is O(1)-ish in the KB size.
* :class:`CompiledRule` pre-computes, once per alignment, everything
  :class:`~repro.core.rewriter.GraphPatternRewriter` used to recompute per
  triple: the head term tuple, the head variable set and the
  functional-dependency parameter layout.
* :class:`CompiledRuleSet` ties the two together and exposes
  :meth:`CompiledRuleSet.find_matches` / :meth:`CompiledRuleSet.first_match`
  with results **identical** (including KB order) to the linear reference
  path — the equivalence is enforced by property tests.

The matching semantics being indexed are asymmetric (Section 3.3.1): an
alignment-head *variable* matches any query term, while a *ground* head
term matches only the identical query term.  Consequently:

* a query triple with ground predicate ``p`` can only be matched by heads
  whose predicate is ``p`` or a variable,
* a query triple with a variable predicate can only be matched by heads
  whose predicate is a variable,
* for ``rdf:type`` heads with a ground class, the query object must be
  that exact class, which is what the per-class sub-index exploits.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..alignment import (
    EntityAlignment,
    FunctionExecutionError,
    FunctionNotFound,
    FunctionRegistry,
)
from ..rdf import RDF, Term, Triple, Variable, is_ground
from .matcher import MatchResult, Substitution

__all__ = ["CompiledRule", "PatternIndex", "CompiledRuleSet"]

_RDF_TYPE = RDF.type


class CompiledRule:
    """One entity alignment with its per-triple work pre-computed.

    ``order`` is the alignment's position in the KB; candidate merging uses
    it to preserve the "first match wins" semantics of Algorithm 1.
    """

    __slots__ = (
        "alignment",
        "order",
        "lhs_terms",
        "lhs_variables",
        "rhs",
        "fd_plans",
    )

    def __init__(self, alignment: EntityAlignment, order: int) -> None:
        self.alignment = alignment
        self.order = order
        self.lhs_terms: tuple[Term, Term, Term] = alignment.lhs.as_tuple()
        self.lhs_variables = frozenset(alignment.lhs_variables())
        self.rhs: tuple[Triple, ...] = tuple(alignment.rhs)
        # (target variable, function URI, parameters, is-variable flags)
        self.fd_plans: tuple[tuple[Variable, Term, tuple[Term, ...], tuple[bool, ...]], ...] = tuple(
            (
                dependency.variable,
                dependency.function,
                dependency.parameters,
                tuple(isinstance(parameter, Variable) for parameter in dependency.parameters),
            )
            for dependency in alignment.functional_dependencies
        )

    # ------------------------------------------------------------------ #
    def match(self, query_triple: Triple) -> Substitution | None:
        """Match the head against ``query_triple`` (= ``match_triple``).

        Inlines the three-position loop of the reference implementation
        without building intermediate :class:`Substitution` objects.
        """
        bindings: dict[Variable, Term] = {}
        for lhs_term, query_term in zip(self.lhs_terms, query_triple, strict=True):
            if isinstance(lhs_term, Variable):
                existing = bindings.get(lhs_term)
                if existing is None:
                    bindings[lhs_term] = query_term
                elif existing != query_term:
                    return None
            elif lhs_term != query_term:
                return None
        return Substitution(bindings)

    def instantiate_functions(
        self,
        substitution: Substitution,
        registry: FunctionRegistry,
        strict: bool = False,
    ) -> tuple[Substitution, int]:
        """Algorithm 2 over the pre-computed dependency plans.

        Behaviourally identical to
        :func:`repro.core.rewriter.instantiate_functions`; errors raised in
        strict mode match that function's messages.
        """
        from .rewriter import RewriteError  # local import breaks the cycle

        calls = 0
        for variable, function, parameters, is_variable in self.fd_plans:
            resolved: list[Term] = [
                substitution.apply_to_term(parameter) if parameter_is_variable else parameter
                for parameter, parameter_is_variable in zip(parameters, is_variable, strict=True)
            ]
            try:
                result = registry.call(function, resolved)
                calls += 1
            except FunctionNotFound as exc:
                if strict:
                    raise RewriteError(
                        f"functional dependency references unknown function {function}"
                    ) from exc
                continue
            except FunctionExecutionError as exc:
                if strict:
                    raise RewriteError(f"functional dependency failed: {exc}") from exc
                continue
            substitution = substitution.bind(variable, result)
        return substitution, calls


class PatternIndex:
    """Bucket compiled rules by the shape of their head.

    Buckets:

    * ``by_predicate[p]`` — heads with ground, non-``rdf:type`` predicate,
    * ``type_by_class[c]`` — ``rdf:type`` heads with ground class ``c``,
    * ``type_variable_class`` — ``rdf:type`` heads whose class is a variable,
    * ``variable_predicate`` — heads whose predicate is a variable (the
      only heads able to match a variable-predicate query triple).

    Every bucket keeps KB order; :meth:`candidates` merges buckets back
    into KB order so "first match wins" is preserved exactly.
    """

    def __init__(self, rules: Iterable[CompiledRule] = ()) -> None:
        self._by_predicate: dict[Term, list[CompiledRule]] = {}
        self._type_by_class: dict[Term, list[CompiledRule]] = {}
        self._type_variable_class: list[CompiledRule] = []
        self._variable_predicate: list[CompiledRule] = []
        self._size = 0
        for rule in rules:
            self.add(rule)

    # ------------------------------------------------------------------ #
    def add(self, rule: CompiledRule) -> None:
        """Place one compiled rule in its bucket."""
        predicate = rule.lhs_terms[1]
        if isinstance(predicate, Variable):
            self._variable_predicate.append(rule)
        elif predicate == _RDF_TYPE:
            head_class = rule.lhs_terms[2]
            if is_ground(head_class):
                self._type_by_class.setdefault(head_class, []).append(rule)
            else:
                self._type_variable_class.append(rule)
        else:
            self._by_predicate.setdefault(predicate, []).append(rule)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    def candidates(self, query_triple: Triple) -> list[CompiledRule]:
        """Rules whose head could match ``query_triple``, in KB order.

        This is a strict superset of the rules that *do* match (the full
        per-term check still runs in :meth:`CompiledRule.match`) and a
        subset of the whole KB — usually a very small one.
        """
        predicate = query_triple.predicate
        if isinstance(predicate, Variable):
            # A ground head predicate never matches a query variable.
            # (Copied, like every return path: buckets are never aliased.)
            return list(self._variable_predicate)
        if predicate == _RDF_TYPE:
            buckets = [self._type_variable_class, self._variable_predicate]
            query_class = query_triple.object
            if is_ground(query_class):
                bucket = self._type_by_class.get(query_class)
                if bucket is not None:
                    buckets.append(bucket)
        else:
            buckets = [self._variable_predicate]
            bucket = self._by_predicate.get(predicate)
            if bucket is not None:
                buckets.append(bucket)
        non_empty = [bucket for bucket in buckets if bucket]
        if not non_empty:
            return []
        if len(non_empty) == 1:
            # Copy so callers can never mutate a live index bucket.
            return list(non_empty[0])
        merged: list[CompiledRule] = [rule for bucket in non_empty for rule in bucket]
        merged.sort(key=lambda rule: rule.order)
        return merged

    def stats(self) -> dict[str, int]:
        """Bucket occupancy (used by benchmark reports)."""
        return {
            "predicate_buckets": len(self._by_predicate),
            "type_class_buckets": len(self._type_by_class),
            "type_variable_class": len(self._type_variable_class),
            "variable_predicate": len(self._variable_predicate),
            "rules": self._size,
        }


class CompiledRuleSet:
    """A KB of compiled rules behind a pattern index.

    Drop-in replacement for the ``Sequence[EntityAlignment]`` the rewriters
    take: matching through :meth:`find_matches` returns exactly what the
    linear :func:`repro.core.matcher.find_matches` returns, only faster.
    """

    def __init__(self, alignments: Iterable[EntityAlignment] = ()) -> None:
        self.alignments: list[EntityAlignment] = []
        self.rules: list[CompiledRule] = []
        self.index = PatternIndex()
        for alignment in alignments:
            self.add(alignment)

    # ------------------------------------------------------------------ #
    def add(self, alignment: EntityAlignment) -> CompiledRuleSet:
        """Compile and index one more alignment (appended in KB order)."""
        rule = CompiledRule(alignment, len(self.rules))
        self.alignments.append(alignment)
        self.rules.append(rule)
        self.index.add(rule)
        return self

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.alignments)

    # ------------------------------------------------------------------ #
    def find_matches(self, query_triple: Triple) -> list[MatchResult]:
        """All matching alignments, in KB order (indexed twin of the scan)."""
        results: list[MatchResult] = []
        for rule in self.index.candidates(query_triple):
            substitution = rule.match(query_triple)
            if substitution is not None:
                results.append(
                    MatchResult(alignment=rule.alignment, substitution=substitution,
                                triple=query_triple)
                )
        return results

    def first_match(
        self, query_triple: Triple
    ) -> tuple[MatchResult | None, CompiledRule | None]:
        """The first matching rule in KB order, or ``(None, None)``.

        Algorithm 1 only ever uses the first match, so the rewriter's hot
        path stops at the first hit instead of materialising the full list.
        """
        for rule in self.index.candidates(query_triple):
            substitution = rule.match(query_triple)
            if substitution is not None:
                result = MatchResult(alignment=rule.alignment, substitution=substitution,
                                     triple=query_triple)
                return result, rule
        return None, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledRuleSet {len(self.rules)} rules, index {self.index.stats()}>"
