"""Core contribution: alignment-driven SPARQL query rewriting.

Implements the matching function, Algorithm 1 (BGP rewriting), Algorithm 2
(functional dependency instantiation), the query-level rewriter, the
FILTER-aware and algebra-level extensions discussed in Section 4, and the
mediator that selects alignments for a target dataset and drives the
rewriting.
"""

from .matcher import (
    MatchResult,
    Substitution,
    find_matches,
    match_alignment,
    match_node,
    match_triple,
)
from .index import CompiledRule, CompiledRuleSet, PatternIndex
from .rewriter import (
    FreshVariableGenerator,
    GraphPatternRewriter,
    QueryRewriter,
    RewriteError,
    RewriteReport,
    TripleRewrite,
    clone_query,
    extend_prologue,
    instantiate_functions,
)
from .filter_rewriter import (
    EqualityConstraint,
    FilterAwareQueryRewriter,
    extract_equality_constraints,
    promote_equality_constraints,
    translate_expression_terms,
)
from .algebra_rewriter import AlgebraQueryRewriter
from .construct_generator import (
    DataTranslator,
    GeneratedConstruct,
    construct_queries_for_alignments,
    construct_query_for_alignment,
    translate_graph_uris,
)
from .mediator import MediationResult, Mediator, TargetProfile

__all__ = [
    # matching
    "Substitution", "MatchResult", "match_node", "match_triple", "match_alignment",
    "find_matches",
    # indexed matching
    "CompiledRule", "CompiledRuleSet", "PatternIndex",
    # rewriting
    "RewriteError", "FreshVariableGenerator", "TripleRewrite", "RewriteReport",
    "instantiate_functions", "extend_prologue", "GraphPatternRewriter", "QueryRewriter",
    "clone_query",
    # extensions
    "EqualityConstraint", "extract_equality_constraints", "promote_equality_constraints",
    "translate_expression_terms", "FilterAwareQueryRewriter", "AlgebraQueryRewriter",
    # CONSTRUCT-based data translation
    "GeneratedConstruct", "construct_query_for_alignment",
    "construct_queries_for_alignments", "translate_graph_uris", "DataTranslator",
    # mediation
    "Mediator", "MediationResult", "TargetProfile",
]
