"""Triple-pattern matching (the paper's ``match`` function).

Section 3.3.1 defines the matching of an alignment-head node ``l`` against
a query-pattern node ``r``::

    match(l, r) = [l/r]   if l is a variable
                = true    if l is not a variable and l = r
                = false   otherwise

and extends it to triples by matching subject, predicate and object and
taking the union of the substitutions.  "The basic procedure of triples'
matching resembles the matching of terms in Prolog, but with the great
simplification that there are no complex terms ... only variables and
instances."  Note the asymmetry: a ground term in the alignment head does
*not* match a variable in the query pattern — the rule simply does not
apply there.

The :class:`Substitution` produced maps alignment variables to query terms,
which may themselves be query variables (e.g. ``?p1 -> ?paper``) or ground
terms (``?a1 -> id:person-02686``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping

from ..rdf import Term, Triple, Variable, is_ground
from ..alignment import EntityAlignment

__all__ = ["Substitution", "MatchResult", "match_node", "match_triple", "match_alignment",
           "find_matches"]


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from (alignment) variables to terms.

    Unlike a SPARQL solution binding, values may be query *variables* as
    well as ground terms; this is exactly the "binding among variables that
    satisfy the match" the paper's matching phase produces.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[Variable, Term] | None = None) -> None:
        self._data: dict[Variable, Term] = dict(data) if data else {}

    # -- Mapping protocol --------------------------------------------------- #
    def __getitem__(self, key: Variable) -> Term:
        return self._data[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- construction -------------------------------------------------------- #
    def bind(self, variable: Variable, term: Term) -> Substitution:
        """Extend with one pair, returning a new substitution."""
        data = dict(self._data)
        data[variable] = term
        return Substitution(data)

    def merge(self, other: Substitution) -> Substitution | None:
        """Union of two substitutions, or ``None`` when they disagree."""
        data = dict(self._data)
        for variable, term in other._data.items():
            existing = data.get(variable)
            if existing is not None and existing != term:
                return None
            data[variable] = term
        return Substitution(data)

    # -- application ---------------------------------------------------------- #
    def apply_to_term(self, term: Term) -> Term:
        """Value of a variable under this substitution (identity otherwise)."""
        if isinstance(term, Variable):
            return self._data.get(term, term)
        return term

    def apply_to_triple(self, pattern: Triple) -> Triple:
        """Instantiate a triple pattern under this substitution."""
        return pattern.map_terms(self.apply_to_term)

    def is_ground_for(self, variable: Variable) -> bool:
        """True when ``variable`` is bound to a URI or literal."""
        value = self._data.get(variable)
        return value is not None and is_ground(value)

    def bound_variables(self) -> set[Variable]:
        return set(self._data)

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._data == other._data
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            f"?{variable.name}/{term.n3()}"
            for variable, term in sorted(self._data.items(), key=lambda i: i[0].name)
        )
        return f"[{pairs}]"


@dataclass(frozen=True)
class MatchResult:
    """The outcome of matching one alignment head against one query triple.

    Mirrors the paper's description: "the matching process produces a
    resulting alignment rule (whose LHS matches the given triple) plus the
    binding among variables that satisfy the match".
    """

    alignment: EntityAlignment
    substitution: Substitution
    triple: Triple

    def rhs_instantiated(self) -> list[Triple]:
        """The RHS patterns under the match substitution (no fresh renaming)."""
        return [self.substitution.apply_to_triple(pattern) for pattern in self.alignment.rhs]


def match_node(lhs_term: Term, query_term: Term) -> Substitution | None:
    """Match one alignment-head node against one query-pattern node."""
    if isinstance(lhs_term, Variable):
        return Substitution({lhs_term: query_term})
    if lhs_term == query_term:
        return Substitution()
    return None


def match_triple(lhs: Triple, query_triple: Triple) -> Substitution | None:
    """Match an alignment head (single triple) against a query triple pattern.

    Returns the combined substitution, or ``None`` when any position fails
    to match or when the same alignment variable would need two different
    values (e.g. head ``<?x p ?x>`` against ``<a p b>``).
    """
    substitution = Substitution()
    for lhs_term, query_term in zip(lhs, query_triple, strict=True):
        node_substitution = match_node(lhs_term, query_term)
        if node_substitution is None:
            return None
        merged = substitution.merge(node_substitution)
        if merged is None:
            return None
        substitution = merged
    return substitution


def match_alignment(alignment: EntityAlignment, query_triple: Triple) -> MatchResult | None:
    """Match one entity alignment against one query triple pattern."""
    substitution = match_triple(alignment.lhs, query_triple)
    if substitution is None:
        return None
    return MatchResult(alignment=alignment, substitution=substitution, triple=query_triple)


def find_matches(
    alignments: Iterable[EntityAlignment], query_triple: Triple
) -> list[MatchResult]:
    """All alignments whose head matches ``query_triple`` (in KB order).

    Algorithm 1 uses the *first* match; exposing the full list lets the
    validation layer warn about ambiguous alignment KBs and lets the
    exhaustive-rewriting extension explore alternatives.
    """
    matches: list[MatchResult] = []
    for alignment in alignments:
        result = match_alignment(alignment, query_triple)
        if result is not None:
            matches.append(result)
    return matches
