"""Generating SPARQL CONSTRUCT queries from entity alignments.

Section 2 of the paper discusses Euzenat et al.'s proposal "to use SPARQL
query language in order to solve data translation problems relying on its
features for extracting data and creating new triples using the CONSTRUCT
statement", and notes that "the problem of how to create dynamically such
queries, exploiting the alignments that ha[ve] been declared between
ontologies, is still an open issue".

This module closes that loop for the alignment formalism of the paper:
every :class:`~repro.alignment.EntityAlignment` can be compiled into a
CONSTRUCT query that *translates data* (not queries) from the source
vocabulary into the target vocabulary:

* the WHERE clause is the alignment's **LHS** (what to extract from a
  source-vocabulary dataset),
* the template is the alignment's **RHS** (what to build in the target
  vocabulary),
* ``sameas`` functional dependencies cannot be executed inside standard
  SPARQL 1.0, so the generator leaves the affected variables shared between
  WHERE and template and reports them; the produced triples can then be
  post-processed with :func:`translate_graph_uris` (the CONSTRUCT-side
  equivalent of running the functions at translation time).

Together with :class:`~repro.sparql.QueryEvaluator` this gives a second,
query-engine-driven implementation of data translation that complements the
:class:`~repro.baselines.MaterializationIntegrator` baseline (which applies
the rules right-to-left).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..alignment import EntityAlignment
from ..coreference import SameAsService
from ..rdf import BNode, Graph, Term, URIRef, Variable
from ..sparql import ConstructQuery, GroupGraphPattern, Prologue, QueryEvaluator, TriplesBlock

__all__ = [
    "GeneratedConstruct",
    "construct_query_for_alignment",
    "construct_queries_for_alignments",
    "translate_graph_uris",
    "DataTranslator",
]


@dataclass
class GeneratedConstruct:
    """A CONSTRUCT query generated from one entity alignment."""

    alignment: EntityAlignment
    query: ConstructQuery
    #: Variables whose value should be post-processed with the alignment's
    #: functional dependencies (e.g. mapped through owl:sameAs).
    deferred_variables: tuple[Variable, ...] = ()

    @property
    def query_text(self) -> str:
        return self.query.serialize()


def construct_query_for_alignment(
    alignment: EntityAlignment,
    prefixes: dict[str, str] | None = None,
) -> GeneratedConstruct:
    """Compile one entity alignment into a data-translation CONSTRUCT query.

    The direction is source → target: the WHERE clause matches the LHS over
    source-vocabulary data and the template instantiates the RHS.  RHS
    variables produced by functional dependencies are aliased to the FD's
    first variable parameter (so the value flows through the query) and are
    reported as *deferred*: their URIs still live in the source URI space
    until :func:`translate_graph_uris` is applied.
    """
    prologue = Prologue()
    for prefix, namespace in (prefixes or {}).items():
        prologue.bind(prefix, namespace)

    # Map FD-produced variables onto the variable they are computed from,
    # when that variable occurs in the LHS (the sameas(?x, re) shape).
    aliases: dict[Variable, Variable] = {}
    deferred: list[Variable] = []
    lhs_variables = alignment.lhs_variables()
    for dependency in alignment.functional_dependencies:
        source_variables = [p for p in dependency.parameters if isinstance(p, Variable)]
        if source_variables and source_variables[0] in lhs_variables:
            aliases[dependency.variable] = source_variables[0]
            deferred.append(dependency.variable)

    def resolve(term: Term) -> Term:
        if not isinstance(term, Variable):
            return term
        resolved = aliases.get(term, term)
        if isinstance(resolved, Variable) and resolved not in lhs_variables:
            # Fresh RHS variables are existentially quantified in the
            # alignment semantics; in a CONSTRUCT template they become blank
            # nodes, which the evaluator re-mints per solution (this is how
            # the CreatorInfo intermediate node is created for each
            # authorship statement).
            return BNode(f"fresh_{resolved.name}")
        return resolved

    template = [pattern.map_terms(resolve) for pattern in alignment.rhs]
    where = GroupGraphPattern([TriplesBlock([alignment.lhs])])
    query = ConstructQuery(prologue, template, where)
    return GeneratedConstruct(
        alignment=alignment,
        query=query,
        deferred_variables=tuple(aliases.get(v, v) for v in deferred),
    )


def construct_queries_for_alignments(
    alignments: Iterable[EntityAlignment],
    prefixes: dict[str, str] | None = None,
) -> list[GeneratedConstruct]:
    """Compile every alignment of a KB into its CONSTRUCT query."""
    return [construct_query_for_alignment(alignment, prefixes) for alignment in alignments]


def translate_graph_uris(
    graph: Graph,
    sameas_service: SameAsService,
    target_uri_pattern: str,
) -> Graph:
    """Map every URI of ``graph`` into the target URI space via owl:sameAs.

    This is the post-processing step standing in for the functional
    dependencies that a plain SPARQL CONSTRUCT cannot execute: after the
    structural translation, instance URIs are swapped for their equivalents
    matching ``target_uri_pattern`` (URIs with no equivalent are kept).
    """
    translated = Graph(namespace_manager=graph.namespace_manager.copy())
    for triple in graph:
        translated.add(triple.map_terms(
            lambda term: sameas_service.translate_or_keep(term, target_uri_pattern)
            if isinstance(term, URIRef) else term
        ))
    return translated


class DataTranslator:
    """Translate whole datasets between vocabularies using CONSTRUCT queries.

    This is the data-level counterpart of the query-level mediator: given
    the same alignment KB, it converts a *source-vocabulary* graph into the
    *target vocabulary* (the direction of the alignments), optionally
    re-minting instance URIs into the target URI space.
    """

    def __init__(
        self,
        alignments: Sequence[EntityAlignment],
        sameas_service: SameAsService | None = None,
        target_uri_pattern: str | None = None,
        prefixes: dict[str, str] | None = None,
    ) -> None:
        self.generated = construct_queries_for_alignments(alignments, prefixes)
        self.sameas_service = sameas_service
        self.target_uri_pattern = target_uri_pattern

    def translate(self, source_graph: Graph) -> Graph:
        """Run every generated CONSTRUCT over ``source_graph`` and merge."""
        evaluator = QueryEvaluator(source_graph)
        output = Graph()
        for generated in self.generated:
            constructed = evaluator.evaluate(generated.query)
            if isinstance(constructed, Graph):
                output.add_all(constructed)
        if self.sameas_service is not None and self.target_uri_pattern is not None:
            output = translate_graph_uris(output, self.sameas_service, self.target_uri_pattern)
        return output

    def query_texts(self) -> list[str]:
        """The generated CONSTRUCT queries as SPARQL text (for inspection)."""
        return [generated.query_text for generated in self.generated]
