"""Query mediation: select alignments and rewrite for a target dataset.

The mediator ties the pieces of Section 3 together: given a source query,
the ontology it was written against and the URI of a target dataset, it

1. asks the alignment KB for the relevant ontology alignments (Section
   3.2.1's selection by context of validity),
2. takes the union of their entity alignments,
3. rewrites the query with Algorithm 1 (optionally with the FILTER-aware
   or algebra-level extensions), executing functional dependencies through
   the function registry / co-reference service.

Execution of the rewritten query against actual endpoints is the
responsibility of :mod:`repro.federation` — the mediator here is transport
agnostic, exactly like the rewriting core of the original three-tier
system.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..alignment import AlignmentStore, EntityAlignment, FunctionRegistry, default_registry
from ..coreference import SameAsService
from ..obs.metrics import rewrite_cache_counter
from ..rdf import URIRef
from ..sparql import Query, parse_query
from .algebra_rewriter import AlgebraQueryRewriter
from .filter_rewriter import FilterAwareQueryRewriter
from .index import CompiledRuleSet
from .rewriter import QueryRewriter, RewriteReport, TripleRewrite, clone_query

__all__ = ["TargetProfile", "MediationResult", "Mediator"]

#: Upper bound on cached rewrite results (oldest entries evicted first).
_RESULT_CACHE_LIMIT = 512


def _copy_report(report: RewriteReport) -> RewriteReport:
    """Report copy whose entries are safe for callers to mutate.

    Trace entries are mutable dataclasses; sharing them between the cache
    and returned results would let one caller's edit poison later hits.
    Triples and substitutions are immutable, so copying stops there.
    """
    return RewriteReport(
        [
            TripleRewrite(entry.original, list(entry.produced),
                          entry.alignment, entry.substitution)
            for entry in report.rewrites
        ],
        report.function_calls,
    )


@dataclass(frozen=True)
class TargetProfile:
    """What the mediator needs to know about a rewriting target.

    ``uri_pattern`` is the regular expression describing the dataset's
    instance URI space (the second argument the paper passes to
    ``sameas``); ``prefixes`` are namespace bindings to install in the
    rewritten query's prologue for readability.
    """

    dataset: URIRef
    ontologies: tuple[URIRef, ...] = ()
    uri_pattern: str | None = None
    prefixes: tuple[tuple[str, str], ...] = ()

    def prefix_dict(self) -> dict[str, str]:
        return dict(self.prefixes)


@dataclass
class MediationResult:
    """Outcome of one mediation request."""

    source_query: Query
    rewritten_query: Query
    target: TargetProfile
    report: RewriteReport
    alignments_considered: int
    mode: str

    @property
    def query_text(self) -> str:
        """The rewritten query as SPARQL text (what would be sent over HTTP)."""
        return self.rewritten_query.serialize()


class Mediator:
    """Alignment-driven SPARQL query mediator.

    Parameters
    ----------
    alignment_store:
        The alignment KB.
    sameas_service:
        Co-reference service backing the ``sameas`` functional dependency
        and the FILTER-aware URI translation.
    registry:
        Function registry; when omitted, the default registry (with
        ``sameas`` bound to ``sameas_service``) is used.
    targets:
        Known target profiles, keyed by dataset URI.  Targets can also be
        registered later with :meth:`register_target`.
    """

    def __init__(
        self,
        alignment_store: AlignmentStore,
        sameas_service: SameAsService | None = None,
        registry: FunctionRegistry | None = None,
        targets: Iterable[TargetProfile] = (),
    ) -> None:
        self.alignment_store = alignment_store
        self.sameas_service = sameas_service or SameAsService()
        self.registry = registry if registry is not None else default_registry(self.sameas_service)
        self._targets: dict[URIRef, TargetProfile] = {}
        # Compiled rule sets shared across modes, keyed by selection context;
        # rewrite results keyed additionally by normalized query text.  Both
        # caches are only valid for one alignment-KB generation.  The lock
        # makes cache reads/writes safe under the federation layer's
        # concurrent fan-out (rewrites themselves run outside the lock).
        self._cache_lock = threading.RLock()
        self._ruleset_cache: dict[tuple, CompiledRuleSet] = {}
        self._result_cache: OrderedDict[tuple, tuple[Query, RewriteReport, int]] = OrderedDict()
        self._cache_generation = self._current_generation()
        self._cache_hits = 0
        self._cache_misses = 0
        for target in targets:
            self.register_target(target)

    # ------------------------------------------------------------------ #
    # Target management
    # ------------------------------------------------------------------ #
    def register_target(self, target: TargetProfile) -> None:
        """Make a dataset available as a rewriting target.

        Re-registering a dataset may change its profile (ontologies, URI
        pattern, prefixes), so cached rewrites are dropped.
        """
        self._targets[target.dataset] = target
        self._clear_caches()

    def target(self, dataset: URIRef) -> TargetProfile:
        """The registered profile for ``dataset``; raises ``KeyError`` if unknown."""
        if dataset not in self._targets:
            raise KeyError(f"unknown target dataset: {dataset}")
        return self._targets[dataset]

    def targets(self) -> list[TargetProfile]:
        return [self._targets[key] for key in sorted(self._targets, key=str)]

    # ------------------------------------------------------------------ #
    # Mediation
    # ------------------------------------------------------------------ #
    def select_alignments(
        self,
        target: TargetProfile,
        source_ontology: URIRef | None = None,
    ) -> list[EntityAlignment]:
        """The union of entity alignments relevant for ``target``."""
        return self.alignment_store.entity_alignments_for(
            dataset=target.dataset,
            source_ontology=source_ontology,
            dataset_ontologies=target.ontologies,
        )

    def compiled_ruleset(
        self,
        target: TargetProfile,
        source_ontology: URIRef | None = None,
    ) -> CompiledRuleSet:
        """The indexed rule set for ``target``, compiled once per KB generation.

        Shared by every rewriting mode, so selecting + compiling the
        relevant alignments is paid once per (target, source ontology) pair
        instead of once per translation.
        """
        key = (target.dataset, source_ontology)
        with self._cache_lock:
            self._check_generation()
            generation = self._cache_generation
            ruleset = self._ruleset_cache.get(key)
        if ruleset is None:
            ruleset = CompiledRuleSet(self.select_alignments(target, source_ontology))
            with self._cache_lock:
                # Publish only into the generation the rules were selected
                # for — a concurrent KB mutation (possibly already observed
                # by another thread's _check_generation) makes them stale.
                self._check_generation()
                if self._cache_generation == generation:
                    # Another thread may have compiled concurrently; keep one.
                    ruleset = self._ruleset_cache.setdefault(key, ruleset)
        return ruleset

    def translate(
        self,
        query: Query | str,
        target_dataset: URIRef,
        source_ontology: URIRef | None = None,
        mode: str = "bgp",
        strict: bool = False,
    ) -> MediationResult:
        """Rewrite ``query`` so it fits ``target_dataset``.

        ``mode`` selects the rewriting engine:

        * ``"bgp"`` — the paper's Algorithm 1 (BGP-only, FILTERs untouched),
        * ``"filter-aware"`` — BGP rewriting plus constraint promotion and
          FILTER URI translation,
        * ``"algebra"`` — rewriting over the SPARQL algebra tree.

        Results are cached per (normalized query text, target dataset,
        source ontology, mode, strict, KB generation); any mutation of the
        alignment store or the sameas service invalidates the cache.
        Cache hits return a fresh copy of the rewritten query, so callers
        may mutate it freely.
        """
        if isinstance(query, str):
            query = parse_query(query)
        target = self.target(target_dataset)

        key = (query.serialize(), target.dataset, source_ontology, mode, strict)
        with self._cache_lock:
            self._check_generation()
            generation = self._cache_generation
            cached = self._result_cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._result_cache.move_to_end(key)
            else:
                self._cache_misses += 1
        rewrite_cache_counter().inc(outcome="hit" if cached is not None else "miss")
        if cached is not None:
            rewritten, report, considered = cached
            return MediationResult(
                source_query=query,
                rewritten_query=clone_query(rewritten),
                target=target,
                report=_copy_report(report),
                alignments_considered=considered,
                mode=mode,
            )

        ruleset = self.compiled_ruleset(target, source_ontology)
        prefixes = target.prefix_dict()

        if mode == "bgp":
            rewriter = QueryRewriter(ruleset, self.registry, strict, prefixes)
            rewritten, report = rewriter.rewrite(query)
        elif mode == "filter-aware":
            if target.uri_pattern is None:
                raise ValueError(
                    f"target {target.dataset} has no URI pattern; filter-aware rewriting "
                    "requires one"
                )
            rewriter = FilterAwareQueryRewriter(
                ruleset, self.registry, self.sameas_service, target.uri_pattern,
                prefixes, strict,
            )
            rewritten, report, _constraints = rewriter.rewrite(query)
        elif mode == "algebra":
            rewriter = AlgebraQueryRewriter(
                ruleset, self.registry, self.sameas_service, target.uri_pattern,
                prefixes, strict,
            )
            rewritten, report = rewriter.rewrite(query)
        else:
            raise ValueError(f"unknown mediation mode: {mode!r}")

        with self._cache_lock:
            # Only publish into the generation the rewrite was computed for;
            # a concurrent KB mutation (even one another thread has already
            # folded into _cache_generation) would make this entry stale.
            self._check_generation()
            if self._cache_generation == generation:
                self._result_cache[key] = (rewritten, report, len(ruleset))
                while len(self._result_cache) > _RESULT_CACHE_LIMIT:
                    self._result_cache.popitem(last=False)

        return MediationResult(
            source_query=query,
            rewritten_query=clone_query(rewritten),
            target=target,
            report=_copy_report(report),
            alignments_considered=len(ruleset),
            mode=mode,
        )

    def rewrite_many(
        self,
        queries: Sequence[Query | str],
        target_dataset: URIRef,
        source_ontology: URIRef | None = None,
        mode: str = "bgp",
        strict: bool = False,
    ) -> list[MediationResult]:
        """Rewrite a batch of queries for one target (same order as input).

        The relevant alignments are selected and compiled once for the
        whole batch; repeated queries within the batch hit the rewrite
        cache.  Used by the federation layer and the CLI to amortise
        per-translation setup.
        """
        target = self.target(target_dataset)
        self.compiled_ruleset(target, source_ontology)  # warm the shared index
        return [
            self.translate(query, target_dataset, source_ontology, mode, strict)
            for query in queries
        ]

    def translate_for_all_targets(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
    ) -> dict[URIRef, MediationResult]:
        """Rewrite ``query`` once per registered target (federation fan-out).

        ``datasets`` restricts the fan-out to a subset of the registered
        targets.
        """
        selected = self.targets() if datasets is None else [self.target(uri) for uri in datasets]
        results: dict[URIRef, MediationResult] = {}
        for target in selected:
            results[target.dataset] = self.translate(
                query, target.dataset, source_ontology, mode
            )
        return results

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    @property
    def result_cache_limit(self) -> int:
        """Maximum number of rewrite results retained (LRU-evicted beyond)."""
        return _RESULT_CACHE_LIMIT

    def cache_info(self) -> dict[str, object]:
        """Hit/miss counters and current cache occupancy (for monitoring)."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "results": len(self._result_cache),
                "rulesets": len(self._ruleset_cache),
                "generation": self._cache_generation,
            }

    def _current_generation(self) -> tuple[int, int, int]:
        """Combined version of everything rewrite output depends on.

        Alignment-KB mutations change which rules fire; sameas-store
        mutations change what the ``sameas`` functional dependency and the
        FILTER URI translation produce; registry mutations change which
        functional dependencies can execute at all.  Any one must
        invalidate.
        """
        return (
            self.alignment_store.generation,
            self.sameas_service.generation,
            self.registry.generation,
        )

    def _check_generation(self) -> None:
        """Drop every cached structure when a backing KB has changed."""
        with self._cache_lock:
            generation = self._current_generation()
            if generation != self._cache_generation:
                self._clear_caches()
                self._cache_generation = generation

    def _clear_caches(self) -> None:
        with self._cache_lock:
            self._ruleset_cache.clear()
            self._result_cache.clear()
