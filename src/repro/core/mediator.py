"""Query mediation: select alignments and rewrite for a target dataset.

The mediator ties the pieces of Section 3 together: given a source query,
the ontology it was written against and the URI of a target dataset, it

1. asks the alignment KB for the relevant ontology alignments (Section
   3.2.1's selection by context of validity),
2. takes the union of their entity alignments,
3. rewrites the query with Algorithm 1 (optionally with the FILTER-aware
   or algebra-level extensions), executing functional dependencies through
   the function registry / co-reference service.

Execution of the rewritten query against actual endpoints is the
responsibility of :mod:`repro.federation` — the mediator here is transport
agnostic, exactly like the rewriting core of the original three-tier
system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..alignment import AlignmentStore, EntityAlignment, FunctionRegistry, default_registry
from ..coreference import SameAsService
from ..rdf import URIRef
from ..sparql import Query, parse_query
from .algebra_rewriter import AlgebraQueryRewriter
from .filter_rewriter import FilterAwareQueryRewriter
from .rewriter import QueryRewriter, RewriteReport

__all__ = ["TargetProfile", "MediationResult", "Mediator"]


@dataclass(frozen=True)
class TargetProfile:
    """What the mediator needs to know about a rewriting target.

    ``uri_pattern`` is the regular expression describing the dataset's
    instance URI space (the second argument the paper passes to
    ``sameas``); ``prefixes`` are namespace bindings to install in the
    rewritten query's prologue for readability.
    """

    dataset: URIRef
    ontologies: Tuple[URIRef, ...] = ()
    uri_pattern: Optional[str] = None
    prefixes: Tuple[Tuple[str, str], ...] = ()

    def prefix_dict(self) -> Dict[str, str]:
        return dict(self.prefixes)


@dataclass
class MediationResult:
    """Outcome of one mediation request."""

    source_query: Query
    rewritten_query: Query
    target: TargetProfile
    report: RewriteReport
    alignments_considered: int
    mode: str

    @property
    def query_text(self) -> str:
        """The rewritten query as SPARQL text (what would be sent over HTTP)."""
        return self.rewritten_query.serialize()


class Mediator:
    """Alignment-driven SPARQL query mediator.

    Parameters
    ----------
    alignment_store:
        The alignment KB.
    sameas_service:
        Co-reference service backing the ``sameas`` functional dependency
        and the FILTER-aware URI translation.
    registry:
        Function registry; when omitted, the default registry (with
        ``sameas`` bound to ``sameas_service``) is used.
    targets:
        Known target profiles, keyed by dataset URI.  Targets can also be
        registered later with :meth:`register_target`.
    """

    def __init__(
        self,
        alignment_store: AlignmentStore,
        sameas_service: Optional[SameAsService] = None,
        registry: Optional[FunctionRegistry] = None,
        targets: Iterable[TargetProfile] = (),
    ) -> None:
        self.alignment_store = alignment_store
        self.sameas_service = sameas_service or SameAsService()
        self.registry = registry if registry is not None else default_registry(self.sameas_service)
        self._targets: Dict[URIRef, TargetProfile] = {}
        for target in targets:
            self.register_target(target)

    # ------------------------------------------------------------------ #
    # Target management
    # ------------------------------------------------------------------ #
    def register_target(self, target: TargetProfile) -> None:
        """Make a dataset available as a rewriting target."""
        self._targets[target.dataset] = target

    def target(self, dataset: URIRef) -> TargetProfile:
        """The registered profile for ``dataset``; raises ``KeyError`` if unknown."""
        if dataset not in self._targets:
            raise KeyError(f"unknown target dataset: {dataset}")
        return self._targets[dataset]

    def targets(self) -> List[TargetProfile]:
        return [self._targets[key] for key in sorted(self._targets, key=str)]

    # ------------------------------------------------------------------ #
    # Mediation
    # ------------------------------------------------------------------ #
    def select_alignments(
        self,
        target: TargetProfile,
        source_ontology: Optional[URIRef] = None,
    ) -> List[EntityAlignment]:
        """The union of entity alignments relevant for ``target``."""
        return self.alignment_store.entity_alignments_for(
            dataset=target.dataset,
            source_ontology=source_ontology,
            dataset_ontologies=target.ontologies,
        )

    def translate(
        self,
        query: Union[Query, str],
        target_dataset: URIRef,
        source_ontology: Optional[URIRef] = None,
        mode: str = "bgp",
        strict: bool = False,
    ) -> MediationResult:
        """Rewrite ``query`` so it fits ``target_dataset``.

        ``mode`` selects the rewriting engine:

        * ``"bgp"`` — the paper's Algorithm 1 (BGP-only, FILTERs untouched),
        * ``"filter-aware"`` — BGP rewriting plus constraint promotion and
          FILTER URI translation,
        * ``"algebra"`` — rewriting over the SPARQL algebra tree.
        """
        if isinstance(query, str):
            query = parse_query(query)
        target = self.target(target_dataset)
        alignments = self.select_alignments(target, source_ontology)
        prefixes = target.prefix_dict()

        if mode == "bgp":
            rewriter = QueryRewriter(alignments, self.registry, strict, prefixes)
            rewritten, report = rewriter.rewrite(query)
        elif mode == "filter-aware":
            if target.uri_pattern is None:
                raise ValueError(
                    f"target {target.dataset} has no URI pattern; filter-aware rewriting "
                    "requires one"
                )
            rewriter = FilterAwareQueryRewriter(
                alignments, self.registry, self.sameas_service, target.uri_pattern,
                prefixes, strict,
            )
            rewritten, report, _constraints = rewriter.rewrite(query)
        elif mode == "algebra":
            rewriter = AlgebraQueryRewriter(
                alignments, self.registry, self.sameas_service, target.uri_pattern,
                prefixes, strict,
            )
            rewritten, report = rewriter.rewrite(query)
        else:
            raise ValueError(f"unknown mediation mode: {mode!r}")

        return MediationResult(
            source_query=query,
            rewritten_query=rewritten,
            target=target,
            report=report,
            alignments_considered=len(alignments),
            mode=mode,
        )

    def translate_for_all_targets(
        self,
        query: Union[Query, str],
        source_ontology: Optional[URIRef] = None,
        mode: str = "bgp",
    ) -> Dict[URIRef, MediationResult]:
        """Rewrite ``query`` once per registered target (federation fan-out)."""
        results: Dict[URIRef, MediationResult] = {}
        for target in self.targets():
            results[target.dataset] = self.translate(
                query, target.dataset, source_ontology, mode
            )
        return results
