"""FILTER-aware query rewriting (the extension sketched in Section 4).

The paper's Algorithm 1 only sees the Basic Graph Pattern; constraints that
the query author chose to express in the FILTER section — Figure 6 shows
the co-author query written that way — are invisible to it, so instance
URIs referenced only in FILTERs are never translated into the target
dataset's URI space and the rewritten query silently returns nothing.

This module implements the two complementary remedies:

* **Constraint promotion** (:func:`promote_equality_constraints`): positive
  ``?var = <ground>`` conjuncts found in FILTER expressions are applied as
  substitutions to the BGP before rewriting, so the ground value becomes
  visible to the alignments' functional dependencies.  The FILTER itself is
  retained (promotion never changes the query's solution set — it only
  specialises patterns with information the FILTER already enforces).
* **FILTER term translation** (:class:`FilterAwareQueryRewriter`): after the
  standard BGP rewriting, ground URIs appearing inside FILTER expressions
  are mapped to their target-dataset equivalents through the same
  co-reference service used by the ``sameas`` functional dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..alignment import EntityAlignment, FunctionRegistry
from ..coreference import SameAsService
from ..rdf import Literal, Term, URIRef, Variable
from ..sparql import BinaryExpression, Expression, Query, TermExpression, VariableExpression
from .rewriter import QueryRewriter, RewriteReport, clone_query

__all__ = [
    "EqualityConstraint",
    "extract_equality_constraints",
    "promote_equality_constraints",
    "translate_expression_terms",
    "FilterAwareQueryRewriter",
]


@dataclass(frozen=True)
class EqualityConstraint:
    """A positive ``?variable = ground-term`` constraint found in a FILTER."""

    variable: Variable
    term: Term


def extract_equality_constraints(expression: Expression) -> list[EqualityConstraint]:
    """Collect ``?v = ground`` constraints that hold in every solution.

    Only *positive conjunctive* positions are considered: conjuncts of
    ``&&`` chains and the expression itself.  Constraints under negation,
    disjunction or comparison operators are ignored because they do not
    necessarily hold for every solution.
    """
    constraints: list[EqualityConstraint] = []
    for conjunct in _conjuncts(expression):
        constraint = _as_equality(conjunct)
        if constraint is not None:
            constraints.append(constraint)
    return constraints


def _conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, BinaryExpression) and expression.operator == "&&":
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]


def _as_equality(expression: Expression) -> EqualityConstraint | None:
    if not isinstance(expression, BinaryExpression) or expression.operator != "=":
        return None
    left, right = expression.left, expression.right
    variable = _expression_variable(left)
    term = _expression_ground_term(right)
    if variable is None or term is None:
        variable = _expression_variable(right)
        term = _expression_ground_term(left)
    if variable is None or term is None:
        return None
    return EqualityConstraint(variable, term)


def _expression_variable(expression: Expression) -> Variable | None:
    if isinstance(expression, VariableExpression):
        return expression.variable
    if isinstance(expression, TermExpression) and isinstance(expression.term, Variable):
        return expression.term
    return None


def _expression_ground_term(expression: Expression) -> Term | None:
    if isinstance(expression, TermExpression) and isinstance(expression.term, (URIRef, Literal)):
        return expression.term
    return None


def promote_equality_constraints(query: Query) -> tuple[Query, list[EqualityConstraint]]:
    """Return a copy of ``query`` with FILTER equalities folded into the BGPs.

    For every triple pattern mentioning a constrained variable, a
    *specialised copy* with the variable replaced by the ground term is
    appended to the same triples block.  The original pattern and the FILTER
    are kept, so the solution set is unchanged (the added pattern is implied
    by the FILTER); the specialised copy simply exposes the ground value to
    the rewriting algorithm — in particular to ``sameas`` functional
    dependencies that only fire on ground URIs.
    """
    promoted = clone_query(query)
    constraints: list[EqualityConstraint] = []
    for filter_element in promoted.filters():
        constraints.extend(extract_equality_constraints(filter_element.expression))
    if not constraints:
        return promoted, []

    replacement: dict[Variable, Term] = {}
    for constraint in constraints:
        # The first constraint on a variable wins; contradictory constraints
        # would make the query unsatisfiable anyway.
        replacement.setdefault(constraint.variable, constraint.term)

    def substitute(term: Term) -> Term:
        if isinstance(term, Variable):
            return replacement.get(term, term)
        return term

    for block in promoted.triples_blocks():
        specialised = []
        for pattern in block.patterns:
            copy = pattern.map_terms(substitute)
            if copy != pattern and copy not in block.patterns and copy not in specialised:
                specialised.append(copy)
        block.patterns.extend(specialised)
    return promoted, constraints


def translate_expression_terms(
    expression: Expression,
    service: SameAsService,
    target_uri_pattern: str,
) -> Expression:
    """Rewrite ground URIs inside a FILTER expression into the target URI space.

    Every :class:`URIRef` constant is looked up in the co-reference service
    and replaced by its equivalent matching ``target_uri_pattern`` (URIs
    with no equivalent are kept, which preserves the original — possibly
    unsatisfiable — semantics rather than inventing data).
    """

    def translate(term: Term) -> Term:
        if isinstance(term, URIRef):
            return service.translate_or_keep(term, target_uri_pattern)
        return term

    return expression.map_terms(translate)


class FilterAwareQueryRewriter:
    """Query rewriter that also handles FILTER-expressed constraints.

    The pipeline is: promote FILTER equalities into the BGP, run the
    standard Algorithm-1 rewriting, then translate ground URIs remaining in
    FILTER expressions into the target dataset's URI space.  Used by
    Experiment E7 to show the Figure 6 query succeeding where the BGP-only
    rewriter fails.
    """

    def __init__(
        self,
        alignments: Sequence[EntityAlignment],
        registry: FunctionRegistry,
        sameas_service: SameAsService,
        target_uri_pattern: str,
        extra_prefixes: dict[str, str] | None = None,
        strict: bool = False,
        use_index: bool = True,
    ) -> None:
        # ``alignments`` may be a plain sequence or a pre-built
        # ``CompiledRuleSet`` (the mediator shares one across modes).
        self._base_rewriter = QueryRewriter(alignments, registry, strict, extra_prefixes,
                                            use_index)
        self._service = sameas_service
        self._target_uri_pattern = target_uri_pattern

    def rewrite(self, query: Query) -> tuple[Query, RewriteReport, list[EqualityConstraint]]:
        """Rewrite ``query``; returns (query, report, promoted constraints)."""
        promoted, constraints = promote_equality_constraints(query)
        rewritten, report = self._base_rewriter.rewrite(promoted)
        for filter_element in rewritten.filters():
            filter_element.expression = translate_expression_terms(
                filter_element.expression, self._service, self._target_uri_pattern
            )
        return rewritten, report, constraints

    def rewrite_to_text(self, query: Query) -> str:
        rewritten, _report, _constraints = self.rewrite(query)
        return rewritten.serialize()
