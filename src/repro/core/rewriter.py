"""The SPARQL query rewriting algorithm (Section 3.3 of the paper).

Three layers are provided:

* :func:`instantiate_functions` — Algorithm 2 (``instFunction``): execute
  the functional dependencies of a matched rule over the bindings obtained
  by the matching phase, extending the substitution with the computed
  values.  Functions run **at rewrite time**; unbound variables pass
  through untouched (the paper's "safe assumption" that the target endpoint
  needs no function support).
* :class:`GraphPatternRewriter` — Algorithm 1 (``rewrite``): scan a Basic
  Graph Pattern, match each triple against the alignment heads, apply the
  matched rule's body under the (function-extended) binding and rename the
  remaining free RHS variables to fresh variables; unmatched triples are
  copied unchanged.
* :class:`QueryRewriter` — apply the BGP rewriting to every triples block
  of a parsed query, producing a new query that fits the target ontology /
  dataset while preserving the result form, FILTERs and solution modifiers
  (preserving FILTERs verbatim is precisely the limitation discussed in
  Section 4 and addressed by :mod:`repro.core.filter_rewriter`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..alignment import EntityAlignment, FunctionExecutionError, FunctionNotFound, FunctionRegistry
from ..rdf import Term, Triple, Variable
from ..sparql import ConstructQuery, Prologue, Query
from .matcher import MatchResult, Substitution, find_matches

__all__ = [
    "RewriteError",
    "FreshVariableGenerator",
    "TripleRewrite",
    "RewriteReport",
    "instantiate_functions",
    "extend_prologue",
    "GraphPatternRewriter",
    "QueryRewriter",
    "clone_query",
]


class RewriteError(ValueError):
    """Raised when a query cannot be rewritten (e.g. missing function)."""


class FreshVariableGenerator:
    """Mint query variables guaranteed not to clash with existing ones.

    The paper's rewritten query (Figure 3) shows fresh variables named
    ``?_33``, ``?_38``; we follow the more readable ``?newN`` convention
    used in the worked example of Section 3.3.2 while still guaranteeing
    uniqueness against the variables already present in the query.
    """

    def __init__(self, reserved: Iterable[Variable] = (), prefix: str = "new") -> None:
        self._reserved: set[str] = {variable.name for variable in reserved}
        self._prefix = prefix
        self._counter = 0

    def reserve(self, variables: Iterable[Variable]) -> None:
        """Mark more variable names as unavailable."""
        self._reserved.update(variable.name for variable in variables)

    def fresh(self) -> Variable:
        """Return a new, unused variable."""
        while True:
            self._counter += 1
            candidate = f"{self._prefix}{self._counter}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return Variable(candidate)


@dataclass
class TripleRewrite:
    """Trace entry: how one input triple pattern was handled."""

    original: Triple
    produced: list[Triple]
    alignment: EntityAlignment | None = None
    substitution: Substitution | None = None

    @property
    def matched(self) -> bool:
        """True when an alignment head matched the original triple."""
        return self.alignment is not None


@dataclass
class RewriteReport:
    """Summary of one BGP / query rewriting run."""

    rewrites: list[TripleRewrite] = field(default_factory=list)
    function_calls: int = 0

    @property
    def matched_count(self) -> int:
        return sum(1 for rewrite in self.rewrites if rewrite.matched)

    @property
    def unmatched_count(self) -> int:
        return sum(1 for rewrite in self.rewrites if not rewrite.matched)

    @property
    def input_size(self) -> int:
        return len(self.rewrites)

    @property
    def output_size(self) -> int:
        return sum(len(rewrite.produced) for rewrite in self.rewrites)

    def alignments_used(self) -> list[EntityAlignment]:
        """Distinct alignments that fired, in order of first use."""
        seen: list[EntityAlignment] = []
        for rewrite in self.rewrites:
            if rewrite.alignment is not None and rewrite.alignment not in seen:
                seen.append(rewrite.alignment)
        return seen

    def merge(self, other: RewriteReport) -> None:
        """Fold another report (e.g. from a different BGP) into this one."""
        self.rewrites.extend(other.rewrites)
        self.function_calls += other.function_calls


# --------------------------------------------------------------------------- #
# Algorithm 2 — instFunction
# --------------------------------------------------------------------------- #
def instantiate_functions(
    match: MatchResult,
    registry: FunctionRegistry,
    strict: bool = False,
) -> tuple[Substitution, int]:
    """Execute the functional dependencies of a matched rule (Algorithm 2).

    For every RHS variable carrying a functional dependency, the parameters
    are resolved through the match binding (ground values and bound
    variables are substituted, unbound variables are passed through) and
    the function is invoked; the result extends the binding for that
    variable.  Returns the extended substitution and the number of function
    invocations performed.

    With ``strict=False`` a missing function or a failing invocation leaves
    the variable unbound (it will be renamed to a fresh variable by
    Algorithm 1), mirroring the tolerant behaviour of the deployed system;
    with ``strict=True`` those situations raise :class:`RewriteError`.
    """
    substitution = match.substitution
    alignment = match.alignment
    calls = 0

    for dependency in alignment.functional_dependencies:
        parameters: list[Term] = []
        for parameter in dependency.parameters:
            if isinstance(parameter, Variable):
                parameters.append(substitution.apply_to_term(parameter))
            else:
                parameters.append(parameter)
        try:
            result = registry.call(dependency.function, parameters)
            calls += 1
        except FunctionNotFound as exc:
            if strict:
                raise RewriteError(
                    f"functional dependency references unknown function {dependency.function}"
                ) from exc
            continue
        except FunctionExecutionError as exc:
            if strict:
                raise RewriteError(f"functional dependency failed: {exc}") from exc
            continue
        substitution = substitution.bind(dependency.variable, result)
    return substitution, calls


# --------------------------------------------------------------------------- #
# Algorithm 1 — rewrite
# --------------------------------------------------------------------------- #
class GraphPatternRewriter:
    """Rewrite Basic Graph Patterns using a set of entity alignments.

    Parameters
    ----------
    alignments:
        The entity alignments (the union of the relevant ontology
        alignments' EA sets, per Section 3.2.1), or an already-compiled
        :class:`~repro.core.index.CompiledRuleSet` to share across
        rewriters.
    registry:
        Function registry used to execute functional dependencies.
    strict:
        Propagate function errors instead of skipping the dependency.
    use_index:
        When ``True`` (the default), matching runs through the pattern
        index; ``False`` falls back to the reference linear scan.  Both
        paths produce byte-identical rewrites — the flag exists for the
        equivalence tests and the E5 indexed-vs-linear benchmark.
    """

    def __init__(
        self,
        alignments: Sequence[EntityAlignment] | CompiledRuleSet,
        registry: FunctionRegistry | None = None,
        strict: bool = False,
        use_index: bool = True,
    ) -> None:
        from .index import CompiledRuleSet

        self._ruleset: CompiledRuleSet | None
        if isinstance(alignments, CompiledRuleSet):
            # Shared ruleset: reference its (append-only) list, no copy.
            self._ruleset = alignments if use_index else None
            self._alignments = alignments.alignments
        else:
            self._alignments = list(alignments)
            self._ruleset = CompiledRuleSet(self._alignments) if use_index else None
        self.registry = registry if registry is not None else FunctionRegistry()
        self.strict = strict

    @property
    def alignments(self) -> list[EntityAlignment]:
        """Snapshot of the rule set (compiled once at construction).

        Returns a copy: the rules consulted during rewriting are fixed
        when the rewriter is built, so mutating the returned list cannot
        (and must not appear to) change matching behaviour.
        """
        return list(self._alignments)

    # -- single triple -------------------------------------------------------- #
    def rewrite_triple(
        self,
        pattern: Triple,
        fresh: FreshVariableGenerator,
    ) -> TripleRewrite:
        """Rewrite one triple pattern (one iteration of Algorithm 1's loop)."""
        if self._ruleset is not None:
            match, rule = self._ruleset.first_match(pattern)
        else:
            matches = find_matches(self._alignments, pattern)
            match, rule = (matches[0], None) if matches else (None, None)
        if match is None:
            return TripleRewrite(original=pattern, produced=[pattern])
        if rule is not None:
            substitution, _calls = rule.instantiate_functions(
                match.substitution, self.registry, self.strict
            )
            lhs_variables: frozenset | set[Variable] = rule.lhs_variables
        else:
            substitution, _calls = instantiate_functions(match, self.registry, self.strict)
            lhs_variables = match.alignment.lhs_variables()

        # Step 4: bind all remaining free RHS variables to new variables so
        # the same alignment can be reused without over-constraining.
        produced: list[Triple] = []
        local_fresh: dict[Variable, Variable] = {}

        def resolve(term: Term) -> Term:
            if not isinstance(term, Variable):
                return term
            value = substitution.apply_to_term(term)
            if value is not term:
                return value
            if term in lhs_variables:
                # An LHS variable absent from the match can only occur when
                # the head mentions it in an ignored position; keep it.
                return term
            if term not in local_fresh:
                local_fresh[term] = fresh.fresh()
            return local_fresh[term]

        for rhs_pattern in match.alignment.rhs:
            produced.append(rhs_pattern.map_terms(resolve))
        return TripleRewrite(
            original=pattern,
            produced=produced,
            alignment=match.alignment,
            substitution=substitution,
        )

    # -- whole BGP ------------------------------------------------------------- #
    def rewrite_bgp(
        self,
        patterns: Sequence[Triple],
        fresh: FreshVariableGenerator | None = None,
    ) -> tuple[list[Triple], RewriteReport]:
        """Rewrite a Basic Graph Pattern (Algorithm 1).

        Returns the rewritten pattern list and a :class:`RewriteReport`
        tracing every decision.
        """
        if fresh is None:
            reserved: set[Variable] = set()
            for pattern in patterns:
                reserved |= pattern.variables()
            fresh = FreshVariableGenerator(reserved)

        report = RewriteReport()
        result: list[Triple] = []
        for pattern in patterns:
            rewrite = self.rewrite_triple(pattern, fresh)
            substitution = rewrite.substitution
            if substitution is not None and rewrite.alignment is not None:
                report.function_calls += len(rewrite.alignment.functional_dependencies)
            report.rewrites.append(rewrite)
            result.extend(rewrite.produced)
        return result, report


# --------------------------------------------------------------------------- #
# Query-level rewriting
# --------------------------------------------------------------------------- #
def clone_query(query: Query) -> Query:
    """Deep-copy a query AST so rewriting never mutates the input query."""
    return copy.deepcopy(query)


class QueryRewriter:
    """Rewrite whole SPARQL queries (SELECT / ASK / CONSTRUCT).

    Every triples block in the WHERE clause (including blocks nested inside
    OPTIONAL, UNION and grouped patterns) is rewritten with
    :class:`GraphPatternRewriter`.  The query result form, FILTER sections
    and solution modifiers are preserved unchanged — reproducing both the
    strength and the documented limitation of the paper's approach.
    """

    def __init__(
        self,
        alignments: Sequence[EntityAlignment] | CompiledRuleSet,
        registry: FunctionRegistry | None = None,
        strict: bool = False,
        extra_prefixes: dict[str, str] | None = None,
        use_index: bool = True,
    ) -> None:
        self._pattern_rewriter = GraphPatternRewriter(alignments, registry, strict, use_index)
        self._extra_prefixes = dict(extra_prefixes or {})

    @property
    def alignments(self) -> list[EntityAlignment]:
        return self._pattern_rewriter.alignments

    @property
    def registry(self) -> FunctionRegistry:
        return self._pattern_rewriter.registry

    def rewrite(self, query: Query) -> tuple[Query, RewriteReport]:
        """Return the rewritten query (a new object) and the rewrite report."""
        rewritten = clone_query(query)
        fresh = FreshVariableGenerator(rewritten.variables())
        report = RewriteReport()

        for block in rewritten.triples_blocks():
            new_patterns, block_report = self._pattern_rewriter.rewrite_bgp(
                block.patterns, fresh
            )
            block.patterns = new_patterns
            report.merge(block_report)

        if isinstance(rewritten, ConstructQuery):
            # CONSTRUCT templates are part of the result form and are left
            # untouched: the rewriting targets where data is read from, not
            # the shape of what the query builds.
            pass

        self._extend_prologue(rewritten.prologue, report)
        return rewritten, report

    def rewrite_to_text(self, query: Query) -> str:
        """Rewrite and serialise in one call (the mediator's common path)."""
        rewritten, _report = self.rewrite(query)
        return rewritten.serialize()

    # ------------------------------------------------------------------ #
    def _extend_prologue(self, prologue: Prologue, report: RewriteReport) -> None:
        extend_prologue(prologue, report, self._extra_prefixes)


def extend_prologue(
    prologue: Prologue,
    report: RewriteReport,
    extra_prefixes: dict[str, str] | None = None,
) -> None:
    """Bind prefixes for the target vocabulary so output stays compact."""
    for prefix, namespace in (extra_prefixes or {}).items():
        prologue.namespace_manager.bind(prefix, namespace, replace=False)
    # Derive prefixes from the vocabularies introduced by fired rules.
    used_namespaces: set[str] = set()
    for alignment in report.alignments_used():
        for uri in alignment.target_properties():
            used_namespaces.add(uri.namespace_split()[0])
    counter = 0
    for namespace in sorted(used_namespaces):
        if not namespace or prologue.namespace_manager.prefix(namespace) is not None:
            continue
        counter += 1
        candidate = f"tgt{counter}"
        while prologue.namespace_manager.namespace(candidate) is not None:
            counter += 1
            candidate = f"tgt{counter}"
        prologue.namespace_manager.bind(candidate, namespace)
