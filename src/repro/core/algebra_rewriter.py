"""Rewriting on the SPARQL algebra representation.

Section 4 proposes adapting the approach "to the SPARQL algebra [8] that
offers the advantage of an homogeneous representation of the whole query
(LISP like structures)".  :class:`AlgebraQueryRewriter` implements that
direction: the query is translated into the algebra operator tree, BGP
leaves are rewritten with the same Algorithm-1 engine, FILTER operator
expressions are translated into the target URI space, and the tree is
converted back into an executable/serialisable query.

Functionally this produces the same result as
:class:`repro.core.filter_rewriter.FilterAwareQueryRewriter`; the value of
the algebra route is uniformity — a single bottom-up transform visits both
graph patterns and constraints — which is what Experiment E7's ablation
compares.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..alignment import EntityAlignment, FunctionRegistry
from ..coreference import SameAsService
from ..sparql import (
    AlgebraBGP,
    AlgebraFilter,
    AlgebraNode,
    Query,
    algebra_to_group,
    translate_group,
)
from .filter_rewriter import translate_expression_terms
from .rewriter import (
    FreshVariableGenerator,
    GraphPatternRewriter,
    RewriteReport,
    clone_query,
    extend_prologue,
)

__all__ = ["AlgebraQueryRewriter"]


class AlgebraQueryRewriter:
    """Rewrite queries through their algebra representation."""

    def __init__(
        self,
        alignments: Sequence[EntityAlignment],
        registry: FunctionRegistry,
        sameas_service: SameAsService | None = None,
        target_uri_pattern: str | None = None,
        extra_prefixes: dict[str, str] | None = None,
        strict: bool = False,
        use_index: bool = True,
    ) -> None:
        # ``alignments`` may be a plain sequence or a pre-built
        # ``CompiledRuleSet`` (the mediator shares one across modes).
        self._pattern_rewriter = GraphPatternRewriter(alignments, registry, strict, use_index)
        self._service = sameas_service
        self._target_uri_pattern = target_uri_pattern
        self._extra_prefixes = dict(extra_prefixes or {})

    # ------------------------------------------------------------------ #
    def rewrite_algebra(
        self, node: AlgebraNode, fresh: FreshVariableGenerator
    ) -> tuple[AlgebraNode, RewriteReport]:
        """Rewrite an algebra tree bottom-up; returns (new tree, report)."""
        report = RewriteReport()

        def transform(current: AlgebraNode) -> AlgebraNode | None:
            if isinstance(current, AlgebraBGP):
                new_patterns, block_report = self._pattern_rewriter.rewrite_bgp(
                    current.patterns, fresh
                )
                report.merge(block_report)
                return AlgebraBGP(new_patterns)
            if isinstance(current, AlgebraFilter) and self._service is not None \
                    and self._target_uri_pattern is not None:
                translated = translate_expression_terms(
                    current.expression, self._service, self._target_uri_pattern
                )
                return AlgebraFilter(translated, current.child)
            return None

        return node.transform(transform), report

    def rewrite(self, query: Query) -> tuple[Query, RewriteReport]:
        """Rewrite a query via its algebra form.

        The WHERE clause is replaced by the group reconstructed from the
        rewritten pattern-level algebra; the result form and solution
        modifiers are kept from the original query.
        """
        rewritten = clone_query(query)
        fresh = FreshVariableGenerator(rewritten.variables())
        pattern_algebra = translate_group(rewritten.where)
        new_algebra, report = self.rewrite_algebra(pattern_algebra, fresh)
        rewritten.where = algebra_to_group(new_algebra)

        extend_prologue(rewritten.prologue, report, self._extra_prefixes)
        return rewritten, report

    def rewrite_to_text(self, query: Query) -> str:
        rewritten, _report = self.rewrite(query)
        return rewritten.serialize()
