"""``python -m repro.trace_main`` — module form of the ``repro-trace`` script.

Lets trace span trees be rendered without installing the console scripts
(CI steps, subprocess tests): equivalent to running ``repro-trace``.
"""

import sys

from .cli import main_trace

if __name__ == "__main__":
    sys.exit(main_trace())
