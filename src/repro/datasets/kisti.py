"""KISTI-style dataset using the KISTI research-reference ontology.

This is the worked example's target repository: authorship is modelled
through an intermediate ``CreatorInfo`` node (``paper hasCreatorInfo _:c .
_:c hasCreator person``), names are split into family/given parts and the
URI space is ``http://kisti.rkbexplorer.com/id/`` with ``PER_...`` /
``PAP_...`` identifiers, mirroring the URIs shown in Section 3.3.2.
"""

from __future__ import annotations

import random


from ..federation import DatasetDescription
from ..rdf import Graph, KISTI_ID, Literal, RDF, Triple, URIRef, XSD
from .ontologies import KISTI_DATASET_URI, KISTI_ONTOLOGY_URI, KISTI_TERMS
from .world import WorldModel

__all__ = ["KistiDatasetBuilder"]

_KIND_TO_CLASS = {
    "article": "Paper",
    "proceedings": "ProceedingsPaper",
    "book": "Monograph",
    "thesis": "Dissertation",
}


class KistiDatasetBuilder:
    """Publish a partial view of the world with the KISTI ontology.

    ``coverage`` controls which fraction of the world's papers this
    repository holds — the redundancy/overlap that makes federated querying
    worthwhile.
    """

    dataset_uri: URIRef = KISTI_DATASET_URI
    endpoint_uri: URIRef = URIRef("http://kisti.rkbexplorer.com/sparql/")
    uri_pattern: str = r"http://kisti\.rkbexplorer\.com/id/\S*"

    def __init__(self, world: WorldModel, coverage: float = 0.6, seed: int = 23) -> None:
        self.world = world
        self.coverage = coverage
        self.seed = seed
        self.covered_paper_keys: set[int] = self._sample_papers()
        self.covered_person_keys: set[int] = self._covered_persons()

    # ------------------------------------------------------------------ #
    # URI minting (the identifiers of Section 3.3.2: kid:PER_000...105047)
    # ------------------------------------------------------------------ #
    @staticmethod
    def person_uri(key: int) -> URIRef:
        return KISTI_ID[f"PER_{key:012d}"]

    @staticmethod
    def paper_uri(key: int) -> URIRef:
        return KISTI_ID[f"PAP_{key:012d}"]

    @staticmethod
    def project_uri(key: int) -> URIRef:
        return KISTI_ID[f"PRJ_{key:012d}"]

    @staticmethod
    def organization_uri(key: int) -> URIRef:
        return KISTI_ID[f"INS_{key:012d}"]

    @staticmethod
    def creator_info_uri(paper_key: int, position: int) -> URIRef:
        return KISTI_ID[f"CRE_{paper_key:09d}_{position:03d}"]

    def mint(self, kind: str, key: int) -> URIRef:
        minters = {
            "person": self.person_uri,
            "paper": self.paper_uri,
            "project": self.project_uri,
            "organization": self.organization_uri,
        }
        return minters[kind](key)

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def _sample_papers(self) -> set[int]:
        if self.coverage >= 1.0:
            return {paper.key for paper in self.world.papers}
        rng = random.Random(f"{self.seed}-kisti-papers")
        count = max(1, int(len(self.world.papers) * self.coverage))
        return set(rng.sample([paper.key for paper in self.world.papers], count))

    def _covered_persons(self) -> set[int]:
        persons: set[int] = set()
        for paper in self.world.papers:
            if paper.key in self.covered_paper_keys:
                persons.update(paper.author_keys)
        return persons

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def build(self) -> Graph:
        graph = Graph(identifier=self.dataset_uri)
        self._add_institutes(graph)
        self._add_researchers(graph)
        self._add_papers(graph)
        self._add_projects(graph)
        self._add_citations(graph)
        return graph

    def _add_institutes(self, graph: Graph) -> None:
        for organization in self.world.organizations:
            uri = self.organization_uri(organization.key)
            graph.add(Triple(uri, RDF.type, KISTI_TERMS["Institute"]))
            graph.add(Triple(uri, KISTI_TERMS["name"], Literal(organization.name)))

    def _add_researchers(self, graph: Graph) -> None:
        for person in self.world.persons:
            if person.key not in self.covered_person_keys:
                continue
            uri = self.person_uri(person.key)
            graph.add(Triple(uri, RDF.type, KISTI_TERMS["Researcher"]))
            graph.add(Triple(uri, KISTI_TERMS["name"], Literal(person.full_name)))
            graph.add(Triple(uri, KISTI_TERMS["familyName"], Literal(person.family_name)))
            graph.add(Triple(uri, KISTI_TERMS["givenName"], Literal(person.given_name)))
            graph.add(Triple(uri, KISTI_TERMS["email"], Literal(person.email)))
            affiliation = self.world.affiliations.get(person.key)
            if affiliation is not None:
                graph.add(Triple(uri, KISTI_TERMS["affiliatedWith"],
                                 self.organization_uri(affiliation)))

    def _add_papers(self, graph: Graph) -> None:
        for paper in self.world.papers:
            if paper.key not in self.covered_paper_keys:
                continue
            uri = self.paper_uri(paper.key)
            klass = KISTI_TERMS[_KIND_TO_CLASS.get(paper.kind, "Publication")]
            graph.add(Triple(uri, RDF.type, klass))
            graph.add(Triple(uri, RDF.type, KISTI_TERMS["Publication"]))
            graph.add(Triple(uri, KISTI_TERMS["title"], Literal(paper.title)))
            graph.add(Triple(uri, KISTI_TERMS["publicationYear"],
                             Literal(paper.year, datatype=XSD.integer)))
            graph.add(Triple(uri, KISTI_TERMS["publishedIn"], Literal(paper.venue)))
            graph.add(Triple(uri, KISTI_TERMS["pageRange"], Literal(paper.pages)))
            # Authorship through the CreatorInfo indirection.
            for position, author_key in enumerate(paper.author_keys):
                creator_info = self.creator_info_uri(paper.key, position)
                graph.add(Triple(creator_info, RDF.type, KISTI_TERMS["CreatorInfo"]))
                graph.add(Triple(uri, KISTI_TERMS["hasCreatorInfo"], creator_info))
                graph.add(Triple(creator_info, KISTI_TERMS["hasCreator"],
                                 self.person_uri(author_key)))

    def _add_projects(self, graph: Graph) -> None:
        for project in self.world.projects:
            uri = self.project_uri(project.key)
            graph.add(Triple(uri, RDF.type, KISTI_TERMS["ResearchProject"]))
            graph.add(Triple(uri, KISTI_TERMS["title"], Literal(project.name)))
            graph.add(Triple(uri, KISTI_TERMS["startDate"],
                             Literal(project.start_year, datatype=XSD.integer)))
            graph.add(Triple(uri, KISTI_TERMS["endDate"],
                             Literal(project.end_year, datatype=XSD.integer)))
            if project.leader_key in self.covered_person_keys:
                graph.add(Triple(uri, KISTI_TERMS["hasLeader"],
                                 self.person_uri(project.leader_key)))
            for member_key in project.member_keys:
                if member_key in self.covered_person_keys:
                    graph.add(Triple(uri, KISTI_TERMS["hasMember"],
                                     self.person_uri(member_key)))

    def _add_citations(self, graph: Graph) -> None:
        for citing, cited in self.world.citations:
            if citing in self.covered_paper_keys and cited in self.covered_paper_keys:
                graph.add(Triple(self.paper_uri(citing), KISTI_TERMS["references"],
                                 self.paper_uri(cited)))

    # ------------------------------------------------------------------ #
    def description(self, triple_count: int | None = None) -> DatasetDescription:
        return DatasetDescription(
            uri=self.dataset_uri,
            endpoint_uri=self.endpoint_uri,
            ontologies=(KISTI_ONTOLOGY_URI,),
            uri_pattern=self.uri_pattern,
            title="KISTI RKB repository (KISTI ontology)",
            triple_count=triple_count,
        )
