"""DBpedia-like dataset (the target of the 42-alignment KB of Section 3.4).

DBpedia models the same reality much more loosely: a flat ``dbo:author``
property from the article to the person, FOAF-style naming and the
``http://dbpedia.org/resource/`` URI space.  Coverage is intentionally the
lowest of the three repositories — only "notable" researchers and papers
appear — which is what makes its contribution to recall modest but
non-zero in Experiment E6.
"""

from __future__ import annotations

import random


from ..federation import DatasetDescription
from ..rdf import DBPEDIA_RES, FOAF, Graph, Literal, RDF, Triple, URIRef, XSD
from .ontologies import DBPEDIA_DATASET_URI, DBPEDIA_ONTOLOGY_URI, DBPEDIA_TERMS
from .world import WorldModel

__all__ = ["DBpediaDatasetBuilder"]

_KIND_TO_CLASS = {
    "article": "AcademicArticle",
    "proceedings": "AcademicArticle",
    "book": "Book",
    "thesis": "Thesis",
}


class DBpediaDatasetBuilder:
    """Publish a sparse view of the world with the DBpedia-like ontology."""

    dataset_uri: URIRef = DBPEDIA_DATASET_URI
    endpoint_uri: URIRef = URIRef("http://dbpedia.org/sparql")
    uri_pattern: str = r"http://dbpedia\.org/resource/\S*"

    def __init__(self, world: WorldModel, coverage: float = 0.35, seed: int = 31) -> None:
        self.world = world
        self.coverage = coverage
        self.seed = seed
        self.covered_paper_keys: set[int] = self._sample_papers()
        self.covered_person_keys: set[int] = self._covered_persons()

    # ------------------------------------------------------------------ #
    # URI minting
    # ------------------------------------------------------------------ #
    def person_uri(self, key: int) -> URIRef:
        person = self.world.persons[key]
        slug = f"{person.given_name}_{person.family_name}".replace(" ", "_")
        return DBPEDIA_RES[f"{slug}_{key}"]

    @staticmethod
    def paper_uri(key: int) -> URIRef:
        return DBPEDIA_RES[f"Academic_Paper_{key}"]

    @staticmethod
    def project_uri(key: int) -> URIRef:
        return DBPEDIA_RES[f"Research_Project_{key}"]

    def organization_uri(self, key: int) -> URIRef:
        name = self.world.organizations[key].name.replace(" ", "_")
        return DBPEDIA_RES[name]

    def mint(self, kind: str, key: int) -> URIRef:
        minters = {
            "person": self.person_uri,
            "paper": self.paper_uri,
            "project": self.project_uri,
            "organization": self.organization_uri,
        }
        return minters[kind](key)

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def _sample_papers(self) -> set[int]:
        if self.coverage >= 1.0:
            return {paper.key for paper in self.world.papers}
        rng = random.Random(f"{self.seed}-dbpedia-papers")
        count = max(1, int(len(self.world.papers) * self.coverage))
        return set(rng.sample([paper.key for paper in self.world.papers], count))

    def _covered_persons(self) -> set[int]:
        persons: set[int] = set()
        for paper in self.world.papers:
            if paper.key in self.covered_paper_keys:
                persons.update(paper.author_keys)
        return persons

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def build(self) -> Graph:
        graph = Graph(identifier=self.dataset_uri)
        self._add_organisations(graph)
        self._add_persons(graph)
        self._add_papers(graph)
        self._add_projects(graph)
        return graph

    def _add_organisations(self, graph: Graph) -> None:
        for organization in self.world.organizations:
            uri = self.organization_uri(organization.key)
            graph.add(Triple(uri, RDF.type, DBPEDIA_TERMS["Organisation"]))
            graph.add(Triple(uri, FOAF.name, Literal(organization.name)))

    def _add_persons(self, graph: Graph) -> None:
        for person in self.world.persons:
            if person.key not in self.covered_person_keys:
                continue
            uri = self.person_uri(person.key)
            graph.add(Triple(uri, RDF.type, DBPEDIA_TERMS["Person"]))
            graph.add(Triple(uri, RDF.type, DBPEDIA_TERMS["Scientist"]))
            graph.add(Triple(uri, FOAF.name, Literal(person.full_name)))
            graph.add(Triple(uri, DBPEDIA_TERMS["surname"], Literal(person.family_name)))
            graph.add(Triple(uri, DBPEDIA_TERMS["givenName"], Literal(person.given_name)))
            affiliation = self.world.affiliations.get(person.key)
            if affiliation is not None:
                graph.add(Triple(uri, DBPEDIA_TERMS["affiliation"],
                                 self.organization_uri(affiliation)))

    def _add_papers(self, graph: Graph) -> None:
        for paper in self.world.papers:
            if paper.key not in self.covered_paper_keys:
                continue
            uri = self.paper_uri(paper.key)
            klass = DBPEDIA_TERMS[_KIND_TO_CLASS.get(paper.kind, "WrittenWork")]
            graph.add(Triple(uri, RDF.type, klass))
            graph.add(Triple(uri, RDF.type, DBPEDIA_TERMS["WrittenWork"]))
            graph.add(Triple(uri, DBPEDIA_TERMS["title"], Literal(paper.title)))
            graph.add(Triple(uri, DBPEDIA_TERMS["publicationYear"],
                             Literal(paper.year, datatype=XSD.integer)))
            graph.add(Triple(uri, DBPEDIA_TERMS["journal"], Literal(paper.venue)))
            for author_key in paper.author_keys:
                graph.add(Triple(uri, DBPEDIA_TERMS["author"], self.person_uri(author_key)))

    def _add_projects(self, graph: Graph) -> None:
        for project in self.world.projects:
            uri = self.project_uri(project.key)
            graph.add(Triple(uri, RDF.type, DBPEDIA_TERMS["ResearchProject"]))
            graph.add(Triple(uri, FOAF.name, Literal(project.name)))
            graph.add(Triple(uri, DBPEDIA_TERMS["projectStartDate"],
                             Literal(project.start_year, datatype=XSD.integer)))
            graph.add(Triple(uri, DBPEDIA_TERMS["projectEndDate"],
                             Literal(project.end_year, datatype=XSD.integer)))
            for member_key in project.member_keys:
                if member_key in self.covered_person_keys:
                    graph.add(Triple(uri, DBPEDIA_TERMS["projectMember"],
                                     self.person_uri(member_key)))

    # ------------------------------------------------------------------ #
    def description(self, triple_count: int | None = None) -> DatasetDescription:
        return DatasetDescription(
            uri=self.dataset_uri,
            endpoint_uri=self.endpoint_uri,
            ontologies=(DBPEDIA_ONTOLOGY_URI,),
            uri_pattern=self.uri_pattern,
            title="DBpedia (DBpedia ontology)",
            triple_count=triple_count,
        )
