"""The alignment knowledge bases of the deployed system (Section 3.4).

The paper reports two alignment sets:

* **24 alignments** (mixed concept and property alignments) between AKT
  data and the KISTI data set — including the worked example's
  ``akt:has-author`` → ``kisti:hasCreatorInfo / kisti:hasCreator`` chain
  with its two ``sameas`` functional dependencies;
* **42 alignments** (mixed concept and property alignments) between the
  ECS/AKT data set and DBpedia.

This module reconstructs both knowledge bases over the synthetic
vocabularies of :mod:`repro.datasets.ontologies`.  The exact pairs are of
course our own (the originals were never published), but the *mix* —
level-0 class and property renamings, level-1 intersections, level-2
chains and value partitions, sameas-based URI translation — follows what
the paper describes, and the counts match exactly.
"""

from __future__ import annotations


from ..alignment import (
    EntityAlignment,
    FunctionalDependency,
    OntologyAlignment,
    SAMEAS_FUNCTION,
    class_alignment,
    class_to_intersection_alignment,
)
from ..rdf import AKT, Literal, Namespace, Triple, URIRef, Variable
from .ontologies import (
    AKT_ONTOLOGY_URI,
    AKT_TERMS,
    DBPEDIA_DATASET_URI,
    DBPEDIA_ONTOLOGY_URI,
    DBPEDIA_TERMS,
    KISTI_DATASET_URI,
    KISTI_ONTOLOGY_URI,
    KISTI_TERMS,
)

__all__ = [
    "KISTI_URI_PATTERN",
    "DBPEDIA_URI_PATTERN",
    "RKB_URI_PATTERN",
    "akt_to_kisti_alignment",
    "akt_to_dbpedia_alignment",
    "has_author_chain_alignment",
]

#: Instance-URI-space regular expressions (the second sameas argument).
RKB_URI_PATTERN = r"http://southampton\.rkbexplorer\.com/id/\S*"
KISTI_URI_PATTERN = r"http://kisti\.rkbexplorer\.com/id/\S*"
DBPEDIA_URI_PATTERN = r"http://dbpedia\.org/resource/\S*"

_AKT2KISTI = Namespace("http://ecs.soton.ac.uk/alignments/akt2kisti#")
_AKT2DBPEDIA = Namespace("http://ecs.soton.ac.uk/alignments/akt2dbpedia#")


def _sameas_fd(target: str, source: str, pattern: str) -> FunctionalDependency:
    """Shorthand for ``?target = sameas(?source, "pattern")``."""
    return FunctionalDependency(Variable(target), SAMEAS_FUNCTION,
                                [Variable(source), Literal(pattern)])


def _uri_property_alignment(source_property: URIRef, target_property: URIRef,
                            pattern: str, identifier: URIRef) -> EntityAlignment:
    """Property alignment whose subject and object URIs are translated.

    ``<?x P1 ?y>  ->  <?x2 P2 ?y2>`` with ``?x2 = sameas(?x, pattern)`` and
    ``?y2 = sameas(?y, pattern)`` — the shape needed whenever both ends of
    the property are instances with dataset-local URIs.
    """
    x, y = Variable("x"), Variable("y")
    x2, y2 = Variable("x2"), Variable("y2")
    return EntityAlignment(
        lhs=Triple(x, source_property, y),
        rhs=[Triple(x2, target_property, y2)],
        functional_dependencies=[
            _sameas_fd("x2", "x", pattern),
            _sameas_fd("y2", "y", pattern),
        ],
        identifier=identifier,
    )


def _literal_property_alignment(source_property: URIRef, target_property: URIRef,
                                pattern: str, identifier: URIRef) -> EntityAlignment:
    """Property alignment translating only the subject URI (object is a literal)."""
    x, y = Variable("x"), Variable("y")
    x2 = Variable("x2")
    return EntityAlignment(
        lhs=Triple(x, source_property, y),
        rhs=[Triple(x2, target_property, y)],
        functional_dependencies=[_sameas_fd("x2", "x", pattern)],
        identifier=identifier,
    )


def has_author_chain_alignment(uri_pattern: str = KISTI_URI_PATTERN,
                               identifier: URIRef | None = None) -> EntityAlignment:
    """The worked example's alignment (Figure 2 / the Turtle listing).

    ``<?p1 akt:has-author ?a1>`` rewrites to the KISTI CreatorInfo chain
    with both instance URIs translated through ``sameas``.
    """
    p1, a1 = Variable("p1"), Variable("a1")
    p2, c, a2 = Variable("p2"), Variable("c"), Variable("a2")
    return EntityAlignment(
        lhs=Triple(p1, AKT_TERMS["has-author"], a1),
        rhs=[
            Triple(p2, KISTI_TERMS["hasCreatorInfo"], c),
            Triple(c, KISTI_TERMS["hasCreator"], a2),
        ],
        functional_dependencies=[
            _sameas_fd("p2", "p1", uri_pattern),
            _sameas_fd("a2", "a1", uri_pattern),
        ],
        identifier=identifier if identifier is not None else _AKT2KISTI["creator_info"],
    )


# --------------------------------------------------------------------------- #
# AKT -> KISTI (24 entity alignments)
# --------------------------------------------------------------------------- #
_AKT_KISTI_CLASS_PAIRS = [
    ("Person", "Researcher"),
    ("Article-Reference", "Paper"),
    ("Book-Reference", "Monograph"),
    ("Thesis-Reference", "Dissertation"),
    ("Conference-Proceedings-Reference", "ProceedingsPaper"),
    ("Publication-Reference", "Publication"),
    ("Project", "ResearchProject"),
    ("Organization", "Institute"),
    ("Research-Area", "SubjectField"),
    ("Event", "AcademicEvent"),
]

#: (AKT property, KISTI property, needs URI translation on the object?)
_AKT_KISTI_PROPERTY_PAIRS = [
    ("has-title", "title", False),
    ("has-year", "publicationYear", False),
    ("has-date", "publicationDate", False),
    ("article-of-journal", "publishedIn", False),
    ("cites-publication-reference", "references", True),
    ("has-affiliation", "affiliatedWith", True),
    ("full-name", "name", False),
    ("family-name", "familyName", False),
    ("given-name", "givenName", False),
    ("has-email-address", "email", False),
    ("has-web-address", "homepage", False),
    ("addresses-generic-area-of-interest", "researchField", True),
    ("has-project-member", "hasMember", True),
]


def akt_to_kisti_alignment(uri_pattern: str = KISTI_URI_PATTERN) -> OntologyAlignment:
    """The 24-entity-alignment OA from the AKT ontology to the KISTI dataset."""
    alignments: list[EntityAlignment] = []

    for index, (source, target) in enumerate(_AKT_KISTI_CLASS_PAIRS):
        alignments.append(
            class_alignment(AKT_TERMS[source], KISTI_TERMS[target],
                            identifier=_AKT2KISTI[f"class_{index}"])
        )

    alignments.append(has_author_chain_alignment(uri_pattern))

    for index, (source, target, translate_object) in enumerate(_AKT_KISTI_PROPERTY_PAIRS):
        identifier = _AKT2KISTI[f"property_{index}"]
        if translate_object:
            alignments.append(
                _uri_property_alignment(AKT_TERMS[source], KISTI_TERMS[target],
                                        uri_pattern, identifier)
            )
        else:
            alignments.append(
                _literal_property_alignment(AKT_TERMS[source], KISTI_TERMS[target],
                                            uri_pattern, identifier)
            )

    ontology_alignment = OntologyAlignment(
        source_ontologies=[AKT_ONTOLOGY_URI],
        target_ontologies=[KISTI_ONTOLOGY_URI],
        target_datasets=[KISTI_DATASET_URI],
        entity_alignments=alignments,
        identifier=_AKT2KISTI["ontology_alignment"],
    )
    assert len(ontology_alignment) == 24, f"expected 24 alignments, built {len(ontology_alignment)}"
    return ontology_alignment


# --------------------------------------------------------------------------- #
# AKT/ECS -> DBpedia (42 entity alignments)
# --------------------------------------------------------------------------- #
_AKT_DBPEDIA_CLASS_PAIRS = [
    ("Person", "Person"),
    ("Article-Reference", "AcademicArticle"),
    ("Book-Reference", "Book"),
    ("Thesis-Reference", "Thesis"),
    ("Conference-Proceedings-Reference", "AcademicArticle"),
    ("Publication-Reference", "WrittenWork"),
    ("Project", "ResearchProject"),
    ("Organization", "Organisation"),
    ("Research-Area", "AcademicSubject"),
    ("Event", "AcademicConference"),
]

#: (AKT property, DBpedia property, needs URI translation on the object?)
_AKT_DBPEDIA_PROPERTY_PAIRS = [
    ("has-author", "author", True),
    ("has-title", "title", False),
    ("has-date", "publicationDate", False),
    ("has-year", "publicationYear", False),
    ("article-of-journal", "journal", False),
    ("cites-publication-reference", "cites", True),
    ("has-affiliation", "affiliation", True),
    ("family-name", "surname", False),
    ("given-name", "givenName", False),
    ("has-email-address", "emailAddress", False),
    ("has-web-address", "homepage", False),
    ("addresses-generic-area-of-interest", "field", True),
    ("has-project-member", "projectMember", True),
    ("has-project-leader", "projectCoordinator", True),
    ("has-goal", "projectObjective", False),
    ("has-start-date", "projectStartDate", False),
    ("has-end-date", "projectEndDate", False),
    ("involves-organization", "projectParticipant", True),
    ("has-academic-degree", "academicDegree", False),
    ("member-of", "employer", True),
    ("has-pages", "numberOfPages", False),
    ("has-abstract", "abstract", False),
    ("has-keyword", "subject", False),
    ("edited-by", "editor", True),
    ("has-volume", "volume", False),
    ("has-issue", "issueNumber", False),
    ("has-publisher", "publisher", False),
    ("has-isbn", "isbn", False),
    ("has-doi", "doi", False),
]


def akt_to_dbpedia_alignment(uri_pattern: str = DBPEDIA_URI_PATTERN) -> OntologyAlignment:
    """The 42-entity-alignment OA from the ECS/AKT data to DBpedia."""
    alignments: list[EntityAlignment] = []

    for index, (source, target) in enumerate(_AKT_DBPEDIA_CLASS_PAIRS):
        alignments.append(
            class_alignment(AKT_TERMS[source], DBPEDIA_TERMS[target],
                            identifier=_AKT2DBPEDIA[f"class_{index}"])
        )

    # Level-1 intersections (the Burgundy-style alignments of Section 3.2.2).
    alignments.append(
        class_to_intersection_alignment(
            AKT_TERMS["Person"],
            [DBPEDIA_TERMS["Person"], DBPEDIA_TERMS["Scientist"]],
            identifier=_AKT2DBPEDIA["person_scientist"],
        )
    )
    alignments.append(
        class_to_intersection_alignment(
            AKT_TERMS["Article-Reference"],
            [DBPEDIA_TERMS["AcademicArticle"], DBPEDIA_TERMS["WrittenWork"]],
            identifier=_AKT2DBPEDIA["article_writtenwork"],
        )
    )

    # FOAF name: full-name maps outside the DBpedia ontology namespace.
    from ..rdf import FOAF

    alignments.append(
        _literal_property_alignment(AKT_TERMS["full-name"], FOAF.name,
                                    uri_pattern, _AKT2DBPEDIA["full_name"])
    )

    for index, (source, target, translate_object) in enumerate(_AKT_DBPEDIA_PROPERTY_PAIRS):
        identifier = _AKT2DBPEDIA[f"property_{index}"]
        if translate_object:
            alignments.append(
                _uri_property_alignment(AKT_TERMS[source], DBPEDIA_TERMS[target],
                                        uri_pattern, identifier)
            )
        else:
            alignments.append(
                _literal_property_alignment(AKT_TERMS[source], DBPEDIA_TERMS[target],
                                            uri_pattern, identifier)
            )

    ontology_alignment = OntologyAlignment(
        source_ontologies=[AKT_ONTOLOGY_URI],
        target_ontologies=[DBPEDIA_ONTOLOGY_URI],
        target_datasets=[DBPEDIA_DATASET_URI],
        entity_alignments=alignments,
        identifier=_AKT2DBPEDIA["ontology_alignment"],
    )
    assert len(ontology_alignment) == 42, f"expected 42 alignments, built {len(ontology_alignment)}"
    return ontology_alignment
