"""Vocabulary definitions for the integration scenario.

Three vocabularies are modelled after the ones the paper integrates:

* **AKT** — the AKT reference ontology used by the ReSIST / RKB explorer
  repositories (source vocabulary of the worked example),
* **KISTI** — the research-reference ontology of the Korean Institute of
  Science and Technology Information (target of the worked example, with
  the ``CreatorInfo`` indirection),
* **DBPO** — a DBpedia-like ontology (target of the 42-alignment KB of
  Section 3.4).

Only the fragments needed by the data generators and the alignment KBs are
declared, but each vocabulary is also exported as an RDFS graph so ontology
documents exist as artefacts (the alignment context-of-validity points at
their URIs).
"""

from __future__ import annotations


from ..rdf import AKT, DBPO, FOAF, Graph, KISTI, Literal, Namespace, OWL, RDF, RDFS, Triple, URIRef

__all__ = [
    "AKT_ONTOLOGY_URI", "KISTI_ONTOLOGY_URI", "DBPEDIA_ONTOLOGY_URI",
    "ECS_DATASET_URI", "RKB_DATASET_URI", "KISTI_DATASET_URI", "DBPEDIA_DATASET_URI",
    "AKT_TERMS", "KISTI_TERMS", "DBPEDIA_TERMS",
    "akt_ontology_graph", "kisti_ontology_graph", "dbpedia_ontology_graph",
]

#: Ontology identity URIs (the values placed in SO / TO).
AKT_ONTOLOGY_URI = URIRef("http://www.aktors.org/ontology/portal#")
KISTI_ONTOLOGY_URI = URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
DBPEDIA_ONTOLOGY_URI = URIRef("http://dbpedia.org/ontology/")

#: Dataset identity URIs (the values placed in TD), following the paper's
#: convention of using the datasets' voiD URIs.
RKB_DATASET_URI = URIRef("http://southampton.rkbexplorer.com/id/void")
ECS_DATASET_URI = URIRef("http://ecs.southampton.ac.uk/id/void")
KISTI_DATASET_URI = URIRef("http://kisti.rkbexplorer.com/id/void")
DBPEDIA_DATASET_URI = URIRef("http://dbpedia.org/void")


class _Vocabulary:
    """A small helper grouping the classes and properties of a vocabulary."""

    def __init__(self, namespace: Namespace, classes: list[str], properties: list[str]) -> None:
        self.namespace = namespace
        self.class_names = list(classes)
        self.property_names = list(properties)
        self.classes: dict[str, URIRef] = {name: namespace[name] for name in classes}
        self.properties: dict[str, URIRef] = {name: namespace[name] for name in properties}

    def __getitem__(self, name: str) -> URIRef:
        if name in self.classes:
            return self.classes[name]
        if name in self.properties:
            return self.properties[name]
        raise KeyError(name)

    def all_terms(self) -> list[URIRef]:
        return list(self.classes.values()) + list(self.properties.values())

    def to_graph(self, ontology_uri: URIRef) -> Graph:
        """An RDFS description of the vocabulary (the ontology document)."""
        graph = Graph(identifier=ontology_uri)
        graph.add(Triple(ontology_uri, RDF.type, OWL.Ontology))
        for name, uri in self.classes.items():
            graph.add(Triple(uri, RDF.type, OWL.Class))
            graph.add(Triple(uri, RDFS.label, Literal(name)))
            graph.add(Triple(uri, RDFS.isDefinedBy, ontology_uri))
        for name, uri in self.properties.items():
            graph.add(Triple(uri, RDF.type, RDF.Property))
            graph.add(Triple(uri, RDFS.label, Literal(name)))
            graph.add(Triple(uri, RDFS.isDefinedBy, ontology_uri))
        return graph


#: AKT portal ontology fragment (classes and properties used by RKB data).
AKT_TERMS = _Vocabulary(
    AKT,
    classes=[
        "Person",
        "Article-Reference",
        "Book-Reference",
        "Thesis-Reference",
        "Conference-Proceedings-Reference",
        "Publication-Reference",
        "Project",
        "Organization",
        "Research-Area",
        "Event",
    ],
    properties=[
        "has-author",
        "has-title",
        "has-date",
        "has-year",
        "article-of-journal",
        "cites-publication-reference",
        "has-affiliation",
        "full-name",
        "family-name",
        "given-name",
        "has-email-address",
        "has-web-address",
        "addresses-generic-area-of-interest",
        "has-project-member",
        "has-project-leader",
        "has-goal",
        "has-start-date",
        "has-end-date",
        "involves-organization",
        "has-academic-degree",
        "member-of",
        "has-pages",
        "has-abstract",
        "has-keyword",
        "edited-by",
        "has-volume",
        "has-issue",
        "has-publisher",
        "has-isbn",
        "has-doi",
    ],
)

#: KISTI research-reference ontology fragment (different modelling style:
#: authorship goes through a CreatorInfo node, names are split, etc.).
KISTI_TERMS = _Vocabulary(
    KISTI,
    classes=[
        "Researcher",
        "Paper",
        "Monograph",
        "Dissertation",
        "ProceedingsPaper",
        "Publication",
        "ResearchProject",
        "Institute",
        "SubjectField",
        "CreatorInfo",
        "AcademicEvent",
    ],
    properties=[
        "hasCreatorInfo",
        "hasCreator",
        "title",
        "publicationDate",
        "publicationYear",
        "publishedIn",
        "references",
        "affiliatedWith",
        "name",
        "familyName",
        "givenName",
        "email",
        "homepage",
        "researchField",
        "hasMember",
        "hasLeader",
        "objective",
        "startDate",
        "endDate",
        "participatingInstitute",
        "degree",
        "memberOf",
        "pageRange",
    ],
)

#: DBpedia-like ontology fragment (flatter modelling, FOAF reuse).
DBPEDIA_TERMS = _Vocabulary(
    DBPO,
    classes=[
        "Person",
        "Scientist",
        "AcademicArticle",
        "Book",
        "Thesis",
        "WrittenWork",
        "ResearchProject",
        "Organisation",
        "University",
        "AcademicConference",
        "AcademicSubject",
    ],
    properties=[
        "author",
        "title",
        "publicationDate",
        "publicationYear",
        "journal",
        "citedBy",
        "cites",
        "affiliation",
        "birthName",
        "surname",
        "givenName",
        "emailAddress",
        "homepage",
        "field",
        "projectMember",
        "projectCoordinator",
        "projectObjective",
        "projectStartDate",
        "projectEndDate",
        "projectParticipant",
        "academicDegree",
        "employer",
        "numberOfPages",
        "abstract",
        "subject",
        "editor",
        "volume",
        "issueNumber",
        "publisher",
        "isbn",
        "doi",
    ],
)


def akt_ontology_graph() -> Graph:
    """The AKT vocabulary as an RDFS ontology document."""
    return AKT_TERMS.to_graph(AKT_ONTOLOGY_URI)


def kisti_ontology_graph() -> Graph:
    """The KISTI vocabulary as an RDFS ontology document."""
    return KISTI_TERMS.to_graph(KISTI_ONTOLOGY_URI)


def dbpedia_ontology_graph() -> Graph:
    """The DBpedia-like vocabulary as an RDFS ontology document."""
    return DBPEDIA_TERMS.to_graph(DBPEDIA_ONTOLOGY_URI)
