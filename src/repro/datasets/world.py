"""The synthetic "real world" behind the heterogeneous datasets.

The paper's integration scenario relies on three data repositories that
describe *the same underlying reality* (researchers, publications,
projects) with different vocabularies, different URI spaces and only
partial overlap.  :class:`WorldModel` generates that reality once — people,
papers, authorship, projects, organisations — deterministically from a
seed; the per-dataset builders (:mod:`repro.datasets.akt`,
:mod:`repro.datasets.kisti`, :mod:`repro.datasets.dbpedia`) then each
publish a *view* of it.

Keeping a single world model gives the experiments a gold standard: the
true set of co-authors of a person is a property of the world, and recall
of a federated query can be measured against it (Experiment E6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


__all__ = ["Person", "Paper", "Project", "Organization", "WorldModel"]

_GIVEN_NAMES = [
    "Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger", "Grace", "Hedy",
    "John", "Katherine", "Leslie", "Margaret", "Niklaus", "Radia", "Tim",
    "Vint", "Whitfield", "Dorothy", "Frances", "Karen",
]
_FAMILY_NAMES = [
    "Lovelace", "Turing", "Liskov", "Shannon", "Knuth", "Dijkstra", "Hopper",
    "Lamarr", "McCarthy", "Johnson", "Lamport", "Hamilton", "Wirth",
    "Perlman", "Berners-Lee", "Cerf", "Diffie", "Vaughan", "Allen", "Jones",
]
_TOPIC_WORDS = [
    "Dependability", "Security", "Resilience", "Ontologies", "Provenance",
    "Linked Data", "Query Rewriting", "Federation", "Human Factors",
    "Fault Tolerance", "Trust", "Privacy", "Interoperability", "Reasoning",
    "Crawling", "Alignment", "Co-reference", "Mediation", "Integration",
    "Annotation",
]
_ORG_NAMES = [
    "University of Southampton", "KAIST", "KISTI", "University of Newcastle",
    "LAAS-CNRS", "Budapest University of Technology", "City University London",
    "Vytautas Magnus University", "IBM Research", "INRIA",
]


@dataclass(frozen=True)
class Person:
    """A researcher in the synthetic world."""

    key: int
    given_name: str
    family_name: str
    email: str

    @property
    def full_name(self) -> str:
        return f"{self.given_name} {self.family_name}"


@dataclass(frozen=True)
class Organization:
    """A research organisation."""

    key: int
    name: str


@dataclass(frozen=True)
class Paper:
    """A publication with its author list (ordered)."""

    key: int
    title: str
    year: int
    author_keys: tuple[int, ...]
    venue: str
    pages: str
    kind: str  # "article", "proceedings", "book", "thesis"


@dataclass(frozen=True)
class Project:
    """A research project with members and a leader."""

    key: int
    name: str
    member_keys: tuple[int, ...]
    leader_key: int
    start_year: int
    end_year: int


class WorldModel:
    """Deterministic generator of the shared reality.

    Parameters
    ----------
    n_persons, n_papers, n_projects, n_organizations:
        Sizes of the entity populations.
    seed:
        Seed of the pseudo-random generator; two worlds built with the same
        parameters are identical.
    """

    def __init__(
        self,
        n_persons: int = 50,
        n_papers: int = 120,
        n_projects: int = 8,
        n_organizations: int = 6,
        seed: int = 42,
    ) -> None:
        if n_persons < 2:
            raise ValueError("the world needs at least two persons")
        if n_organizations < 1:
            raise ValueError("the world needs at least one organization")
        self.seed = seed
        rng = random.Random(seed)

        self.persons: list[Person] = [
            Person(
                key=index,
                given_name=_GIVEN_NAMES[index % len(_GIVEN_NAMES)],
                family_name=_FAMILY_NAMES[(index // len(_GIVEN_NAMES)) % len(_FAMILY_NAMES)]
                + (f"-{index}" if index >= len(_GIVEN_NAMES) * len(_FAMILY_NAMES) else ""),
                email=f"researcher{index}@example.org",
            )
            for index in range(n_persons)
        ]

        self.organizations: list[Organization] = [
            Organization(key=index, name=_ORG_NAMES[index % len(_ORG_NAMES)])
            for index in range(min(n_organizations, max(1, n_organizations)))
        ]

        self.affiliations: dict[int, int] = {
            person.key: rng.randrange(len(self.organizations)) for person in self.persons
        }

        kinds = ["article", "article", "article", "proceedings", "proceedings", "book", "thesis"]
        self.papers: list[Paper] = []
        for index in range(n_papers):
            team_size = rng.randint(1, min(5, n_persons))
            authors = tuple(sorted(rng.sample(range(n_persons), team_size)))
            topic_a = _TOPIC_WORDS[rng.randrange(len(_TOPIC_WORDS))]
            topic_b = _TOPIC_WORDS[rng.randrange(len(_TOPIC_WORDS))]
            kind = kinds[rng.randrange(len(kinds))]
            self.papers.append(
                Paper(
                    key=index,
                    title=f"{topic_a} and {topic_b}: Study {index}",
                    year=1998 + rng.randrange(12),
                    author_keys=authors,
                    venue=f"Workshop on {topic_a}" if kind == "proceedings" else f"Journal of {topic_a}",
                    pages=f"{rng.randint(1, 300)}-{rng.randint(301, 600)}",
                    kind=kind,
                )
            )

        self.projects: list[Project] = []
        for index in range(n_projects):
            member_count = rng.randint(2, min(8, n_persons))
            members = tuple(sorted(rng.sample(range(n_persons), member_count)))
            start = 2000 + rng.randrange(8)
            self.projects.append(
                Project(
                    key=index,
                    name=f"Project {_TOPIC_WORDS[index % len(_TOPIC_WORDS)]}",
                    member_keys=members,
                    leader_key=members[0],
                    start_year=start,
                    end_year=start + rng.randint(1, 4),
                )
            )

        self.citations: list[tuple[int, int]] = []
        for paper in self.papers:
            n_citations = rng.randint(0, 3)
            candidates = [other.key for other in self.papers if other.key != paper.key]
            if candidates and n_citations:
                for cited in rng.sample(candidates, min(n_citations, len(candidates))):
                    self.citations.append((paper.key, cited))

    # ------------------------------------------------------------------ #
    # Gold-standard queries over the world (used by experiments)
    # ------------------------------------------------------------------ #
    def coauthors_of(self, person_key: int) -> set[int]:
        """The true set of co-authors of ``person_key`` (excluding the person)."""
        coauthors: set[int] = set()
        for paper in self.papers:
            if person_key in paper.author_keys:
                coauthors.update(paper.author_keys)
        coauthors.discard(person_key)
        return coauthors

    def papers_of(self, person_key: int) -> set[int]:
        """Keys of the papers authored by ``person_key``."""
        return {paper.key for paper in self.papers if person_key in paper.author_keys}

    def papers_in_year(self, year: int) -> set[int]:
        """Keys of the papers published in ``year``."""
        return {paper.key for paper in self.papers if paper.year == year}

    def most_prolific_author(self) -> int:
        """Key of the person with the most papers (ties broken by key)."""
        counts = {person.key: len(self.papers_of(person.key)) for person in self.persons}
        return min(sorted(counts), key=lambda key: (-counts[key], key))

    def statistics(self) -> dict[str, int]:
        return {
            "persons": len(self.persons),
            "papers": len(self.papers),
            "projects": len(self.projects),
            "organizations": len(self.organizations),
            "citations": len(self.citations),
        }
