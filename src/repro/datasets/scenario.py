"""End-to-end integration scenario builder.

Assembles everything the experiments need, mirroring the deployment of
Section 3.4:

* a shared :class:`WorldModel`,
* three repositories publishing views of it — RKB/AKT (full coverage),
  KISTI (partial, CreatorInfo modelling) and DBpedia (sparse) — each behind
  a :class:`LocalSparqlEndpoint` described by a voiD profile,
* the co-reference (owl:sameAs) bundles linking the per-dataset URIs,
* the alignment KB holding the 24-alignment AKT→KISTI and 42-alignment
  AKT→DBpedia ontology alignments,
* the :class:`MediatorService` wired over all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..alignment import AlignmentStore
from ..coreference import SameAsService
from ..federation import DatasetRegistry, LocalSparqlEndpoint, MediatorService
from ..rdf import URIRef
from .akt import AktDatasetBuilder
from .alignments import akt_to_dbpedia_alignment, akt_to_kisti_alignment
from .dbpedia import DBpediaDatasetBuilder
from .kisti import KistiDatasetBuilder
from .ontologies import (
    AKT_ONTOLOGY_URI,
    DBPEDIA_DATASET_URI,
    KISTI_DATASET_URI,
    RKB_DATASET_URI,
)
from .world import WorldModel

__all__ = ["IntegrationScenario", "build_resist_scenario"]


@dataclass
class IntegrationScenario:
    """Everything needed to run the paper's experiments."""

    world: WorldModel
    akt_builder: AktDatasetBuilder
    kisti_builder: KistiDatasetBuilder
    dbpedia_builder: DBpediaDatasetBuilder
    registry: DatasetRegistry
    alignment_store: AlignmentStore
    sameas_service: SameAsService
    service: MediatorService

    #: Convenience URIs.
    rkb_dataset: URIRef = RKB_DATASET_URI
    kisti_dataset: URIRef = KISTI_DATASET_URI
    dbpedia_dataset: URIRef = DBPEDIA_DATASET_URI
    source_ontology: URIRef = AKT_ONTOLOGY_URI

    def endpoint(self, dataset_uri: URIRef) -> LocalSparqlEndpoint:
        """The endpoint serving ``dataset_uri``."""
        endpoint = self.registry.get(dataset_uri).endpoint
        assert isinstance(endpoint, LocalSparqlEndpoint)
        return endpoint

    def dataset_sizes(self) -> dict[str, int]:
        """Triple counts per dataset (the voiD ``void:triples`` values)."""
        return {
            str(dataset.uri): dataset.endpoint.triple_count()  # type: ignore[attr-defined]
            for dataset in self.registry
        }

    # -- gold standard helpers ------------------------------------------------ #
    def gold_coauthor_uris(self, person_key: int) -> set[URIRef]:
        """RKB URIs of the true co-authors of ``person_key`` (world-level truth)."""
        return {
            self.akt_builder.person_uri(key)
            for key in self.world.coauthors_of(person_key)
        }

    def akt_person_uri(self, person_key: int) -> URIRef:
        return self.akt_builder.person_uri(person_key)


def build_resist_scenario(
    n_persons: int = 50,
    n_papers: int = 120,
    n_projects: int = 8,
    n_organizations: int = 6,
    rkb_coverage: float = 1.0,
    kisti_coverage: float = 0.6,
    dbpedia_coverage: float = 0.35,
    sameas_coverage: float = 1.0,
    seed: int = 42,
) -> IntegrationScenario:
    """Build the ReSIST-style integration scenario.

    ``rkb_coverage`` / ``kisti_coverage`` / ``dbpedia_coverage`` control how
    much of the world each repository holds (redundant but *partial* copies
    are what make federated querying raise recall); ``sameas_coverage``
    controls which fraction of the overlapping entities actually have
    owl:sameAs links (1.0 reproduces the well-curated situation of the RKB
    repositories).
    """
    world = WorldModel(
        n_persons=n_persons,
        n_papers=n_papers,
        n_projects=n_projects,
        n_organizations=n_organizations,
        seed=seed,
    )
    akt_builder = AktDatasetBuilder(world, coverage=rkb_coverage, seed=seed)
    kisti_builder = KistiDatasetBuilder(world, coverage=kisti_coverage, seed=seed + 1)
    dbpedia_builder = DBpediaDatasetBuilder(world, coverage=dbpedia_coverage, seed=seed + 2)

    akt_graph = akt_builder.build()
    kisti_graph = kisti_builder.build()
    dbpedia_graph = dbpedia_builder.build()

    # ------------------------------------------------------------------ #
    # Co-reference bundles: link each entity's URIs across the datasets
    # that actually describe it.
    # ------------------------------------------------------------------ #
    import random

    sameas = SameAsService()
    rng = random.Random(f"{seed}-sameas")

    def link(kind: str, key: int, kisti_has: bool, dbpedia_has: bool) -> None:
        if sameas_coverage < 1.0 and rng.random() > sameas_coverage:
            return
        bundle = [akt_builder.mint(kind, key)]
        if kisti_has:
            bundle.append(kisti_builder.mint(kind, key))
        if dbpedia_has:
            bundle.append(dbpedia_builder.mint(kind, key))
        if len(bundle) > 1:
            sameas.add_bundle(bundle)

    for person in world.persons:
        link("person", person.key,
             person.key in kisti_builder.covered_person_keys,
             person.key in dbpedia_builder.covered_person_keys)
    for paper in world.papers:
        link("paper", paper.key,
             paper.key in kisti_builder.covered_paper_keys,
             paper.key in dbpedia_builder.covered_paper_keys)
    for project in world.projects:
        link("project", project.key, True, True)
    for organization in world.organizations:
        link("organization", organization.key, True, True)

    # ------------------------------------------------------------------ #
    # Endpoints + voiD registry
    # ------------------------------------------------------------------ #
    registry = DatasetRegistry()
    registry.register_endpoint(
        akt_builder.description(triple_count=len(akt_graph)),
        LocalSparqlEndpoint(akt_builder.endpoint_uri, akt_graph, name="rkb-southampton"),
    )
    registry.register_endpoint(
        kisti_builder.description(triple_count=len(kisti_graph)),
        LocalSparqlEndpoint(kisti_builder.endpoint_uri, kisti_graph, name="kisti"),
    )
    registry.register_endpoint(
        dbpedia_builder.description(triple_count=len(dbpedia_graph)),
        LocalSparqlEndpoint(dbpedia_builder.endpoint_uri, dbpedia_graph, name="dbpedia"),
    )

    # ------------------------------------------------------------------ #
    # Alignment KB (24 + 42 entity alignments)
    # ------------------------------------------------------------------ #
    alignment_store = AlignmentStore()
    alignment_store.add(akt_to_kisti_alignment())
    alignment_store.add(akt_to_dbpedia_alignment())

    service = MediatorService(alignment_store, registry, sameas)

    return IntegrationScenario(
        world=world,
        akt_builder=akt_builder,
        kisti_builder=kisti_builder,
        dbpedia_builder=dbpedia_builder,
        registry=registry,
        alignment_store=alignment_store,
        sameas_service=sameas,
        service=service,
    )
