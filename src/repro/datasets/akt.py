"""RKB-explorer-style dataset using the AKT reference ontology.

This is the "source" repository of the scenario (the paper's
``southampton.rkbexplorer.com`` data): it covers the whole world model and
mints URIs in the ``http://southampton.rkbexplorer.com/id/`` space, e.g.
``id:person-02686``.
"""

from __future__ import annotations


from ..federation import DatasetDescription
from ..rdf import AKT, Graph, Literal, RDF, RKB_ID, Triple, URIRef, XSD
from .ontologies import AKT_ONTOLOGY_URI, AKT_TERMS, RKB_DATASET_URI
from .world import WorldModel

__all__ = ["AktDatasetBuilder"]

_KIND_TO_CLASS = {
    "article": "Article-Reference",
    "proceedings": "Conference-Proceedings-Reference",
    "book": "Book-Reference",
    "thesis": "Thesis-Reference",
}


class AktDatasetBuilder:
    """Publish a :class:`WorldModel` as AKT-vocabulary RDF.

    Parameters
    ----------
    world:
        The shared world model.
    coverage:
        Fraction of the world's papers present in this repository (the RKB
        repository is the reference copy, so the default is full coverage).
    seed:
        Seed for the coverage sampling.
    """

    dataset_uri: URIRef = RKB_DATASET_URI
    endpoint_uri: URIRef = URIRef("http://southampton.rkbexplorer.com/sparql/")
    uri_pattern: str = r"http://southampton\.rkbexplorer\.com/id/\S*"

    def __init__(self, world: WorldModel, coverage: float = 1.0, seed: int = 11) -> None:
        self.world = world
        self.coverage = coverage
        self.seed = seed
        self.covered_paper_keys: set[int] = self._sample_papers()
        self.covered_person_keys: set[int] = self._covered_persons()

    # ------------------------------------------------------------------ #
    # URI minting (also used by the co-reference generator)
    # ------------------------------------------------------------------ #
    @staticmethod
    def person_uri(key: int) -> URIRef:
        return RKB_ID[f"person-{key:05d}"]

    @staticmethod
    def paper_uri(key: int) -> URIRef:
        return RKB_ID[f"paper-{key:05d}"]

    @staticmethod
    def project_uri(key: int) -> URIRef:
        return RKB_ID[f"project-{key:05d}"]

    @staticmethod
    def organization_uri(key: int) -> URIRef:
        return RKB_ID[f"organization-{key:05d}"]

    def mint(self, kind: str, key: int) -> URIRef:
        """Generic minter keyed by entity kind (used by CoReferenceSpec)."""
        minters = {
            "person": self.person_uri,
            "paper": self.paper_uri,
            "project": self.project_uri,
            "organization": self.organization_uri,
        }
        return minters[kind](key)

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def _sample_papers(self) -> set[int]:
        import random

        if self.coverage >= 1.0:
            return {paper.key for paper in self.world.papers}
        rng = random.Random(f"{self.seed}-akt-papers")
        count = max(1, int(len(self.world.papers) * self.coverage))
        return set(rng.sample([paper.key for paper in self.world.papers], count))

    def _covered_persons(self) -> set[int]:
        persons: set[int] = set()
        for paper in self.world.papers:
            if paper.key in self.covered_paper_keys:
                persons.update(paper.author_keys)
        if self.coverage >= 1.0:
            persons.update(person.key for person in self.world.persons)
        return persons

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def build(self) -> Graph:
        """Materialise the repository as an RDF graph."""
        graph = Graph(identifier=self.dataset_uri)
        self._add_organizations(graph)
        self._add_persons(graph)
        self._add_papers(graph)
        self._add_projects(graph)
        self._add_citations(graph)
        return graph

    def _add_organizations(self, graph: Graph) -> None:
        for organization in self.world.organizations:
            uri = self.organization_uri(organization.key)
            graph.add(Triple(uri, RDF.type, AKT_TERMS["Organization"]))
            graph.add(Triple(uri, AKT_TERMS["full-name"], Literal(organization.name)))

    def _add_persons(self, graph: Graph) -> None:
        for person in self.world.persons:
            if person.key not in self.covered_person_keys:
                continue
            uri = self.person_uri(person.key)
            graph.add(Triple(uri, RDF.type, AKT_TERMS["Person"]))
            graph.add(Triple(uri, AKT_TERMS["full-name"], Literal(person.full_name)))
            graph.add(Triple(uri, AKT_TERMS["family-name"], Literal(person.family_name)))
            graph.add(Triple(uri, AKT_TERMS["given-name"], Literal(person.given_name)))
            graph.add(Triple(uri, AKT_TERMS["has-email-address"], Literal(person.email)))
            affiliation = self.world.affiliations.get(person.key)
            if affiliation is not None:
                graph.add(
                    Triple(uri, AKT_TERMS["has-affiliation"], self.organization_uri(affiliation))
                )

    def _add_papers(self, graph: Graph) -> None:
        for paper in self.world.papers:
            if paper.key not in self.covered_paper_keys:
                continue
            uri = self.paper_uri(paper.key)
            klass = AKT_TERMS[_KIND_TO_CLASS.get(paper.kind, "Publication-Reference")]
            graph.add(Triple(uri, RDF.type, klass))
            graph.add(Triple(uri, RDF.type, AKT_TERMS["Publication-Reference"]))
            graph.add(Triple(uri, AKT_TERMS["has-title"], Literal(paper.title)))
            graph.add(Triple(uri, AKT_TERMS["has-year"],
                             Literal(paper.year, datatype=XSD.integer)))
            graph.add(Triple(uri, AKT_TERMS["has-date"], Literal(f"{paper.year}-01-01")))
            graph.add(Triple(uri, AKT_TERMS["article-of-journal"], Literal(paper.venue)))
            graph.add(Triple(uri, AKT_TERMS["has-pages"], Literal(paper.pages)))
            for author_key in paper.author_keys:
                graph.add(Triple(uri, AKT_TERMS["has-author"], self.person_uri(author_key)))

    def _add_projects(self, graph: Graph) -> None:
        for project in self.world.projects:
            uri = self.project_uri(project.key)
            graph.add(Triple(uri, RDF.type, AKT_TERMS["Project"]))
            graph.add(Triple(uri, AKT_TERMS["has-title"], Literal(project.name)))
            graph.add(Triple(uri, AKT_TERMS["has-start-date"],
                             Literal(project.start_year, datatype=XSD.integer)))
            graph.add(Triple(uri, AKT_TERMS["has-end-date"],
                             Literal(project.end_year, datatype=XSD.integer)))
            graph.add(Triple(uri, AKT_TERMS["has-project-leader"],
                             self.person_uri(project.leader_key)))
            for member_key in project.member_keys:
                if member_key in self.covered_person_keys:
                    graph.add(Triple(uri, AKT_TERMS["has-project-member"],
                                     self.person_uri(member_key)))

    def _add_citations(self, graph: Graph) -> None:
        for citing, cited in self.world.citations:
            if citing in self.covered_paper_keys and cited in self.covered_paper_keys:
                graph.add(Triple(self.paper_uri(citing),
                                 AKT_TERMS["cites-publication-reference"],
                                 self.paper_uri(cited)))

    # ------------------------------------------------------------------ #
    # voiD description
    # ------------------------------------------------------------------ #
    def description(self, triple_count: int | None = None) -> DatasetDescription:
        return DatasetDescription(
            uri=self.dataset_uri,
            endpoint_uri=self.endpoint_uri,
            ontologies=(AKT_ONTOLOGY_URI,),
            uri_pattern=self.uri_pattern,
            title="Southampton RKB explorer (AKT ontology)",
            triple_count=triple_count,
        )
