"""Synthetic datasets reproducing the paper's integration scenario."""

from .akt import AktDatasetBuilder
from .alignments import (
    DBPEDIA_URI_PATTERN,
    KISTI_URI_PATTERN,
    RKB_URI_PATTERN,
    akt_to_dbpedia_alignment,
    akt_to_kisti_alignment,
    has_author_chain_alignment,
)
from .dbpedia import DBpediaDatasetBuilder
from .kisti import KistiDatasetBuilder
from .ontologies import (
    AKT_ONTOLOGY_URI,
    AKT_TERMS,
    DBPEDIA_DATASET_URI,
    DBPEDIA_ONTOLOGY_URI,
    DBPEDIA_TERMS,
    ECS_DATASET_URI,
    KISTI_DATASET_URI,
    KISTI_ONTOLOGY_URI,
    KISTI_TERMS,
    RKB_DATASET_URI,
    akt_ontology_graph,
    dbpedia_ontology_graph,
    kisti_ontology_graph,
)
from .scenario import IntegrationScenario, build_resist_scenario
from .world import Organization, Paper, Person, Project, WorldModel

__all__ = [
    # world
    "WorldModel", "Person", "Paper", "Project", "Organization",
    # builders
    "AktDatasetBuilder", "KistiDatasetBuilder", "DBpediaDatasetBuilder",
    # ontologies
    "AKT_TERMS", "KISTI_TERMS", "DBPEDIA_TERMS",
    "AKT_ONTOLOGY_URI", "KISTI_ONTOLOGY_URI", "DBPEDIA_ONTOLOGY_URI",
    "RKB_DATASET_URI", "ECS_DATASET_URI", "KISTI_DATASET_URI", "DBPEDIA_DATASET_URI",
    "akt_ontology_graph", "kisti_ontology_graph", "dbpedia_ontology_graph",
    # alignments
    "akt_to_kisti_alignment", "akt_to_dbpedia_alignment", "has_author_chain_alignment",
    "KISTI_URI_PATTERN", "DBPEDIA_URI_PATTERN", "RKB_URI_PATTERN",
    # scenario
    "IntegrationScenario", "build_resist_scenario",
]
