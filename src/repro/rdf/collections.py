"""RDF collections (``rdf:List``).

The alignment RDF encoding of Section 3.2.2 represents the parameters of a
functional dependency as an RDF collection (the Turtle ``( _:a1 "regex" )``
syntax, lines 30-33 of the listing).  These helpers build and read the
``rdf:first`` / ``rdf:rest`` linked-list structure.
"""

from __future__ import annotations

from collections.abc import Sequence

from .graph import Graph
from .namespace import RDF
from .terms import Term, fresh_bnode
from .triple import Triple

__all__ = ["build_list", "read_list", "is_list_node", "CollectionError"]


class CollectionError(ValueError):
    """Raised when an ``rdf:List`` structure is malformed."""


def build_list(graph: Graph, items: Sequence[Term]) -> Term:
    """Assert an ``rdf:List`` holding ``items`` and return its head node.

    The empty list is represented by ``rdf:nil`` as mandated by RDF.
    """
    if not items:
        return RDF.nil
    head: Term | None = None
    previous: Term | None = None
    for item in items:
        node = fresh_bnode("list")
        graph.add(Triple(node, RDF.first, item))
        if previous is not None:
            graph.add(Triple(previous, RDF.rest, node))
        if head is None:
            head = node
        previous = node
    assert previous is not None and head is not None
    graph.add(Triple(previous, RDF.rest, RDF.nil))
    return head


def is_list_node(graph: Graph, node: Term) -> bool:
    """True when ``node`` is ``rdf:nil`` or carries an ``rdf:first`` arc."""
    if node == RDF.nil:
        return True
    return graph.value(node, RDF.first, None) is not None


def read_list(graph: Graph, head: Term, max_length: int = 10_000) -> list[Term]:
    """Read an ``rdf:List`` starting at ``head`` into a Python list.

    Raises :class:`CollectionError` on broken or cyclic lists.
    """
    items: list[Term] = []
    node = head
    seen = set()
    while node != RDF.nil:
        if node in seen or len(items) > max_length:
            raise CollectionError(f"cyclic or oversized rdf:List at {head}")
        seen.add(node)
        first = graph.value(node, RDF.first, None)
        if first is None:
            raise CollectionError(f"rdf:List node {node} lacks rdf:first")
        items.append(first)
        rest = graph.value(node, RDF.rest, None)
        if rest is None:
            raise CollectionError(f"rdf:List node {node} lacks rdf:rest")
        node = rest
    return items
