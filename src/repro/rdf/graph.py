"""In-memory indexed RDF graph.

:class:`Graph` is the storage substrate underneath the local SPARQL
endpoints of the federation layer.  It maintains three permutation indexes
(SPO, POS, OSP) so that any triple pattern with at least one ground
position is answered without a full scan — the same design used by
mainstream triple stores (and by Jena's in-memory model, the store used by
the original system).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from .namespace import NamespaceManager, RDF
from .terms import BNode, Term, URIRef, Variable
from .triple import Triple

__all__ = ["Graph", "GraphStatistics", "ReadOnlyGraphView", "TermDictionary", "UNBOUND_ID"]

_Pattern = tuple[Term | None, Term | None, Term | None]

#: Reserved dictionary id meaning "no term bound here".  Kept falsy on
#: purpose: executor hot loops test ``if term_id:`` instead of comparing.
UNBOUND_ID = 0


class TermDictionary:
    """Bidirectional term <-> integer interning table.

    The batched executor (:mod:`repro.sparql.exec`) represents solution
    rows as fixed-width tuples of integers; this dictionary assigns those
    integers.  Each :class:`Graph` owns one dictionary (ids are meaningless
    across graphs), ids are assigned lazily on first use and stay stable
    for the lifetime of the graph — a term is never re-interned to a new
    id, so row tuples survive graph mutations.

    Id ``0`` (:data:`UNBOUND_ID`) is reserved for "unbound" and never
    assigned to a term.
    """

    __slots__ = ("_terms", "_ids")

    def __init__(self) -> None:
        self._terms: list = [None]
        self._ids: dict[Term, int] = {}

    def intern(self, term: Term) -> int:
        """The id for ``term``, assigning a fresh one on first sight."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._terms.append(term)
            self._ids[term] = term_id
        return term_id

    def lookup(self, term: Term) -> int:
        """The id for ``term`` without interning (``UNBOUND_ID`` if unseen)."""
        return self._ids.get(term, UNBOUND_ID)

    def decode(self, term_id: int) -> Term:
        """The term behind ``term_id`` (raises for the unbound id)."""
        term = self._terms[term_id]
        if term is None:
            raise KeyError(f"term id {term_id} decodes to no term")
        return term

    @property
    def terms(self) -> list:
        """The id-indexed decode table (index 0 is the unbound slot)."""
        return self._terms

    def __len__(self) -> int:
        return len(self._terms) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TermDictionary {len(self)} terms>"


class GraphStatistics:
    """Incrementally maintained cardinality statistics for one graph.

    The query planner orders joins by how many triples each pattern can
    match; these counters answer that question in O(1) for any pattern
    with at most one ground position (two- and three-bound patterns are
    answered exactly from the permutation indexes).  Counts are refreshed
    on every :meth:`Graph.add` / :meth:`Graph.discard`, so they are always
    exact — no ANALYZE step, no staleness.
    """

    __slots__ = ("subject_counts", "predicate_counts", "object_counts", "class_counts")

    def __init__(self) -> None:
        #: triples per subject / predicate / object term.
        self.subject_counts: dict[Term, int] = {}
        self.predicate_counts: dict[Term, int] = {}
        self.object_counts: dict[Term, int] = {}
        #: instances per ``rdf:type`` class (object of an rdf:type triple).
        self.class_counts: dict[Term, int] = {}

    # -- maintenance ------------------------------------------------------ #
    def _record(self, s: Term, p: Term, o: Term, delta: int) -> None:
        for counts, term in (
            (self.subject_counts, s),
            (self.predicate_counts, p),
            (self.object_counts, o),
        ):
            updated = counts.get(term, 0) + delta
            if updated > 0:
                counts[term] = updated
            else:
                counts.pop(term, None)
        if p == RDF.type:
            updated = self.class_counts.get(o, 0) + delta
            if updated > 0:
                self.class_counts[o] = updated
            else:
                self.class_counts.pop(o, None)

    def _clear(self) -> None:
        self.subject_counts.clear()
        self.predicate_counts.clear()
        self.object_counts.clear()
        self.class_counts.clear()

    # -- read API ---------------------------------------------------------- #
    @property
    def distinct_subjects(self) -> int:
        return len(self.subject_counts)

    @property
    def distinct_predicates(self) -> int:
        return len(self.predicate_counts)

    @property
    def distinct_objects(self) -> int:
        return len(self.object_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GraphStatistics s={self.distinct_subjects} "
                f"p={self.distinct_predicates} o={self.distinct_objects} "
                f"classes={len(self.class_counts)}>")


class Graph:
    """A set of RDF triples with pattern-match indexes.

    The graph exposes a small, explicit API:

    * :meth:`add`, :meth:`add_all`, :meth:`remove`, :meth:`discard`
    * :meth:`triples` -- generator over triples matching an ``(s, p, o)``
      pattern where ``None`` acts as a wildcard
    * :meth:`subjects`, :meth:`predicates`, :meth:`objects` -- projections
    * :meth:`value` -- fetch a single object/subject
    * set-style operators ``+`` (union), ``-`` (difference), ``&``
      (intersection)
    """

    def __init__(
        self,
        triples: Iterable[Triple] | None = None,
        identifier: URIRef | None = None,
        namespace_manager: NamespaceManager | None = None,
    ) -> None:
        self._identifier = identifier
        self._triples: set[Triple] = set()
        self._spo: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
        # Id-level mirrors of the permutation indexes, keyed by dictionary
        # ids.  The batched executor scans these (:meth:`triples_ids`) so its
        # join loops never hash terms or construct Triple objects.
        self._id_spo: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._id_pos: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._id_osp: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._stats = GraphStatistics()
        self._dictionary = TermDictionary()
        self._version = 0
        self.namespace_manager = namespace_manager or NamespaceManager()
        if triples:
            self.add_all(triples)

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every effective mutation.

        The companion of :attr:`AlignmentStore.generation`: derived
        structures (e.g. the HTTP server's response cache) key their
        entries on it so stale answers cannot outlive a data change.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Identification
    # ------------------------------------------------------------------ #
    @property
    def identifier(self) -> URIRef | None:
        """Optional URI naming this graph (used by :class:`Dataset`)."""
        return self._identifier

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple | tuple[Term, Term, Term]) -> Graph:
        """Add a single (ground) triple.  Returns ``self`` for chaining."""
        triple = self._coerce(triple)
        if triple.variables():
            raise ValueError(f"cannot assert a triple pattern with variables: {triple}")
        if triple in self._triples:
            return self
        self._triples.add(triple)
        s, p, o = triple.as_tuple()
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        intern = self._dictionary.intern
        si, pi, oi = intern(s), intern(p), intern(o)
        self._id_spo[si][pi].add(oi)
        self._id_pos[pi][oi].add(si)
        self._id_osp[oi][si].add(pi)
        self._stats._record(s, p, o, +1)
        self._version += 1
        return self

    def add_all(self, triples: Iterable[Triple | tuple[Term, Term, Term]]) -> Graph:
        """Add every triple from an iterable."""
        for triple in triples:
            self.add(triple)
        return self

    def remove(self, triple: Triple | tuple[Term, Term, Term]) -> Graph:
        """Remove a triple; raise :class:`KeyError` when absent."""
        triple = self._coerce(triple)
        if triple not in self._triples:
            raise KeyError(f"triple not in graph: {triple}")
        return self.discard(triple)

    def discard(self, triple: Triple | tuple[Term, Term, Term]) -> Graph:
        """Remove a triple if present."""
        triple = self._coerce(triple)
        if triple not in self._triples:
            return self
        self._triples.discard(triple)
        s, p, o = triple.as_tuple()
        self._prune(self._spo, s, p, o)
        self._prune(self._pos, p, o, s)
        self._prune(self._osp, o, s, p)
        lookup = self._dictionary.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        self._prune(self._id_spo, si, pi, oi)
        self._prune(self._id_pos, pi, oi, si)
        self._prune(self._id_osp, oi, si, pi)
        self._stats._record(s, p, o, -1)
        self._version += 1
        return self

    def remove_pattern(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> int:
        """Remove every triple matching the pattern; return the count."""
        victims = list(self.triples(subject, predicate, obj))
        for triple in victims:
            self.discard(triple)
        return len(victims)

    def clear(self) -> None:
        """Remove every triple."""
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._id_spo.clear()
        self._id_pos.clear()
        self._id_osp.clear()
        self._stats._clear()
        self._version += 1

    @staticmethod
    def _prune(index, a, b, c) -> None:
        """Drop ``c`` from ``index[a][b]``, pruning emptied levels (keys are
        terms in the term indexes, dictionary ids in the id indexes)."""
        bucket = index[a][b]
        bucket.discard(c)
        if not bucket:
            del index[a][b]
        if not index[a]:
            del index[a]

    @staticmethod
    def _coerce(triple: Triple | tuple[Term, Term, Term]) -> Triple:
        if isinstance(triple, Triple):
            return triple
        return Triple(*triple)

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def __contains__(self, triple: Triple | tuple[Term, Term, Term]) -> bool:
        return self._coerce(triple) in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __bool__(self) -> bool:
        return bool(self._triples)

    def triples(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield triples matching a pattern.

        ``None`` (or a :class:`Variable`) in a position acts as a wildcard.
        The most selective index available for the bound positions is used.
        """
        s = self._normalize(subject)
        p = self._normalize(predicate)
        o = self._normalize(obj)
        if not self._positions_valid(s, p):
            # e.g. a literal in subject/predicate position (a variable bound
            # to a literal by an earlier pattern): nothing can match.
            return

        if s is not None and p is not None and o is not None:
            candidate = Triple(s, p, o)
            if candidate in self._triples:
                yield candidate
            return
        if s is not None and p is not None:
            for obj_term in self._spo.get(s, {}).get(p, ()):  # type: ignore[arg-type]
                yield Triple(s, p, obj_term)
            return
        if p is not None and o is not None:
            for subj_term in self._pos.get(p, {}).get(o, ()):  # type: ignore[arg-type]
                yield Triple(subj_term, p, o)
            return
        if s is not None and o is not None:
            for pred_term in self._osp.get(o, {}).get(s, ()):  # type: ignore[arg-type]
                yield Triple(s, pred_term, o)
            return
        if s is not None:
            for pred_term, objects in self._spo.get(s, {}).items():
                for obj_term in objects:
                    yield Triple(s, pred_term, obj_term)
            return
        if p is not None:
            for obj_term, subjects in self._pos.get(p, {}).items():
                for subj_term in subjects:
                    yield Triple(subj_term, p, obj_term)
            return
        if o is not None:
            for subj_term, predicates in self._osp.get(o, {}).items():
                for pred_term in predicates:
                    yield Triple(subj_term, pred_term, o)
            return
        yield from self._triples

    def triples_ids(
        self, s: int = UNBOUND_ID, p: int = UNBOUND_ID, o: int = UNBOUND_ID
    ) -> Iterator[tuple[int, int, int]]:
        """Yield ``(s, p, o)`` dictionary-id triples matching an id pattern.

        :data:`UNBOUND_ID` (0) acts as the wildcard.  This is the batched
        executor's scan entry point: ids come from (and go back into) this
        graph's :attr:`dictionary`, so the executor's join loops stay in
        integer space — no term hashing, no :class:`Triple` construction.
        A non-zero id that never occurs in the asserted position simply
        matches nothing (the id indexes only contain asserted triples, so
        e.g. a literal id used as subject finds an empty bucket).
        """
        if s and p and o:
            if o in self._id_spo.get(s, {}).get(p, ()):
                yield (s, p, o)
            return
        if s and p:
            for oi in self._id_spo.get(s, {}).get(p, ()):
                yield (s, p, oi)
            return
        if p and o:
            for si in self._id_pos.get(p, {}).get(o, ()):
                yield (si, p, o)
            return
        if s and o:
            for pi in self._id_osp.get(o, {}).get(s, ()):
                yield (s, pi, o)
            return
        if s:
            for pi, objects in self._id_spo.get(s, {}).items():
                for oi in objects:
                    yield (s, pi, oi)
            return
        if p:
            for oi, subjects in self._id_pos.get(p, {}).items():
                for si in subjects:
                    yield (si, p, oi)
            return
        if o:
            for si, predicates in self._id_osp.get(o, {}).items():
                for pi in predicates:
                    yield (si, pi, o)
            return
        for s_term, by_predicate in self._id_spo.items():
            for p_term, objects in by_predicate.items():
                for o_term in objects:
                    yield (s_term, p_term, o_term)

    @staticmethod
    def _normalize(term: Term | None) -> Term | None:
        """Variables behave as wildcards when used in graph-level matching."""
        if term is None or isinstance(term, Variable):
            return None
        return term

    @staticmethod
    def _positions_valid(s: Term | None, p: Term | None) -> bool:
        """Whether the ground lookup terms can occupy their positions at all."""
        if s is not None and not isinstance(s, (URIRef, BNode)):
            return False
        if p is not None and not isinstance(p, URIRef):
            return False
        return True

    # ------------------------------------------------------------------ #
    # Cardinalities (used by the query planner)
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> GraphStatistics:
        """Live, incrementally maintained cardinality statistics."""
        return self._stats

    @property
    def dictionary(self) -> TermDictionary:
        """This graph's term-interning dictionary (see :class:`TermDictionary`).

        Ids are lazily assigned by the batched executor; removing a triple
        does not retire ids (they are tiny and stay valid for row tuples
        held by in-flight queries).
        """
        return self._dictionary

    def cardinality(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> int:
        """Exact number of triples matching the pattern, without enumerating.

        ``None`` (or a :class:`Variable`) acts as a wildcard, mirroring
        :meth:`triples`.  Two- and three-bound patterns are answered from
        the permutation-index buckets; one-bound patterns from the
        incrementally maintained per-term counters; the all-wildcard
        pattern from the triple count.
        """
        s = self._normalize(subject)
        p = self._normalize(predicate)
        o = self._normalize(obj)
        if not self._positions_valid(s, p):
            return 0

        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._triples else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return self._stats.subject_counts.get(s, 0)
        if p is not None:
            return self._stats.predicate_counts.get(p, 0)
        if o is not None:
            return self._stats.object_counts.get(o, 0)
        return len(self._triples)

    def match_pattern(self, pattern: Triple) -> Iterator[Triple]:
        """Yield triples matching a :class:`Triple` pattern (variables wild)."""
        return self.triples(pattern.subject, pattern.predicate, pattern.object)

    def subjects(
        self, predicate: Term | None = None, obj: Term | None = None
    ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        seen: set[Term] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(
        self, subject: Term | None = None, obj: Term | None = None
    ) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen: set[Term] = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(
        self, subject: Term | None = None, predicate: Term | None = None
    ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen: set[Term] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
        default: Term | None = None,
    ) -> Term | None:
        """Return the single missing component of a triple, or ``default``.

        Exactly one of the three positions must be ``None``; the first
        matching value is returned (no uniqueness check, mirroring rdflib).
        """
        positions = [subject, predicate, obj]
        if positions.count(None) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for triple in self.triples(subject, predicate, obj):
            if subject is None:
                return triple.subject
            if predicate is None:
                return triple.predicate
            return triple.object
        return default

    def subjects_of_type(self, rdf_type: URIRef) -> Iterator[Term]:
        """Distinct subjects with ``rdf:type rdf_type``."""
        return self.subjects(RDF.type, rdf_type)

    # ------------------------------------------------------------------ #
    # Vocabulary statistics (used by voiD descriptions)
    # ------------------------------------------------------------------ #
    def predicate_histogram(self) -> dict[Term, int]:
        """Map each predicate to the number of triples using it."""
        return dict(self._stats.predicate_counts)

    def class_histogram(self) -> dict[Term, int]:
        """Map each ``rdf:type`` object to its instance count."""
        return dict(self._stats.class_counts)

    def vocabularies(self) -> set[str]:
        """Namespace URIs of every predicate and class used in the graph."""
        spaces: set[str] = set()
        for triple in self._triples:
            if isinstance(triple.predicate, URIRef):
                spaces.add(triple.predicate.namespace_split()[0])
            if triple.predicate == RDF.type and isinstance(triple.object, URIRef):
                spaces.add(triple.object.namespace_split()[0])
        spaces.discard("")
        return spaces

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def copy(self) -> Graph:
        """Shallow copy preserving identifier and namespace bindings."""
        clone = Graph(identifier=self._identifier,
                      namespace_manager=self.namespace_manager.copy())
        clone.add_all(self._triples)
        return clone

    def __add__(self, other: Graph) -> Graph:
        result = self.copy()
        result.add_all(other)
        return result

    def __iadd__(self, other: Iterable[Triple]) -> Graph:
        self.add_all(other)
        return self

    def __sub__(self, other: Graph) -> Graph:
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(t for t in self._triples if t not in other)
        return result

    def __and__(self, other: Graph) -> Graph:
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(t for t in self._triples if t in other)
        return result

    def __eq__(self, other: object) -> bool:
        """Exact set equality (not bnode-isomorphism; see ``isomorphism``)."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._triples == other._triples

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        return id(self)

    # ------------------------------------------------------------------ #
    # Convenience I/O hooks (implemented in repro.turtle)
    # ------------------------------------------------------------------ #
    def serialize(self, format: str = "turtle") -> str:
        """Serialise the graph to ``turtle`` or ``ntriples`` text."""
        from ..turtle import serialize_graph

        return serialize_graph(self, format=format)

    @classmethod
    def parse(cls, text: str, format: str = "turtle",
              identifier: URIRef | None = None) -> Graph:
        """Parse Turtle or N-Triples text into a new graph."""
        from ..turtle import parse_graph

        graph = parse_graph(text, format=format)
        if identifier is not None:
            graph._identifier = identifier
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = str(self._identifier) if self._identifier else "anonymous"
        return f"<Graph {name} with {len(self)} triples>"


class ReadOnlyGraphView:
    """Immutable facade over a :class:`Graph`.

    Local SPARQL endpoints hand this view to query evaluation so that a
    federated query can never mutate the dataset it reads.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def triples(self, subject=None, predicate=None, obj=None) -> Iterator[Triple]:
        return self._graph.triples(subject, predicate, obj)

    def match_pattern(self, pattern: Triple) -> Iterator[Triple]:
        return self._graph.match_pattern(pattern)

    def triples_ids(self, s=UNBOUND_ID, p=UNBOUND_ID, o=UNBOUND_ID):
        return self._graph.triples_ids(s, p, o)

    def cardinality(self, subject=None, predicate=None, obj=None) -> int:
        return self._graph.cardinality(subject, predicate, obj)

    @property
    def stats(self) -> GraphStatistics:
        return self._graph.stats

    @property
    def dictionary(self) -> TermDictionary:
        return self._graph.dictionary

    @property
    def version(self) -> int:
        return self._graph.version

    def __contains__(self, triple) -> bool:
        return triple in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._graph)

    @property
    def identifier(self) -> URIRef | None:
        return self._graph.identifier

    @property
    def namespace_manager(self) -> NamespaceManager:
        return self._graph.namespace_manager
