"""The :class:`Graph` facade over a pluggable storage backend.

Historically this module *was* the store: three in-memory permutation
indexes (SPO, POS, OSP) plus statistics.  That representation now lives in
:class:`repro.rdf.store.MemoryStore`; ``Graph`` is a thin facade over any
:class:`repro.rdf.store.Store` — the same triple-pattern API can be served
from RAM or from immutable on-disk index segments
(:class:`repro.rdf.store.SegmentStore`), chosen at construction time::

    Graph()                      # in-memory (default)
    Graph(store=SegmentStore(p)) # explicit backend
    open_graph("/data/store")    # persistent, via the factory

The facade owns everything term-level and convention-level — wildcard
normalisation (``Variable`` acts as ``None``), positional validity
(a literal can never match in subject position), set algebra, Turtle I/O —
while the store answers id-level scans, counts and statistics.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Iterator
from pathlib import Path

from .namespace import NamespaceManager, RDF
from .store import (
    UNBOUND_ID,
    GraphStatistics,
    MemoryStore,
    Store,
    TermDictionary,
)
from .terms import BNode, Term, URIRef, Variable
from .triple import Triple

__all__ = [
    "Graph",
    "GraphView",
    "GraphStatistics",
    "ReadOnlyGraphView",
    "TermDictionary",
    "UNBOUND_ID",
]

_Pattern = tuple[Term | None, Term | None, Term | None]

#: File-suffix -> serialisation format, for :meth:`Graph.load`.
_SUFFIX_FORMATS = {".ttl": "turtle", ".turtle": "turtle",
                   ".nt": "ntriples", ".ntriples": "ntriples"}


class Graph:
    """A set of RDF triples with pattern-match indexes, backed by a store.

    The graph exposes a small, explicit API:

    * :meth:`add`, :meth:`add_all`, :meth:`remove`, :meth:`discard`
    * :meth:`triples` -- generator over triples matching an ``(s, p, o)``
      pattern where ``None`` acts as a wildcard
    * :meth:`subjects`, :meth:`predicates`, :meth:`objects` -- projections
    * :meth:`value` -- fetch a single object/subject
    * set-style operators ``+`` (union), ``-`` (difference), ``&``
      (intersection)

    Construction paths: ``Graph()`` uses a fresh in-memory store,
    ``Graph(store=...)`` wraps an explicit backend (possibly already
    populated on disk), ``Graph.load(path)`` parses an RDF file, and
    :func:`repro.open_graph` picks memory vs disk from its argument.
    """

    def __init__(
        self,
        triples: Iterable[Triple] | None = None,
        identifier: URIRef | None = None,
        namespace_manager: NamespaceManager | None = None,
        store: Store | None = None,
    ) -> None:
        self._identifier = identifier
        self._store = store if store is not None else MemoryStore()
        self.namespace_manager = namespace_manager or NamespaceManager()
        if triples:
            self.add_all(triples)

    @property
    def store(self) -> Store:
        """The storage backend this graph reads and writes."""
        return self._store

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every effective mutation.

        The companion of :attr:`AlignmentStore.generation`: derived
        structures (e.g. the HTTP server's response cache) key their
        entries on it so stale answers cannot outlive a data change.
        """
        return self._store.version

    # ------------------------------------------------------------------ #
    # Identification
    # ------------------------------------------------------------------ #
    @property
    def identifier(self) -> URIRef | None:
        """Optional URI naming this graph (used by :class:`Dataset`)."""
        return self._identifier

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple | tuple[Term, Term, Term]) -> Graph:
        """Add a single (ground) triple.  Returns ``self`` for chaining."""
        triple = self._coerce(triple)
        if triple.variables():
            raise ValueError(f"cannot assert a triple pattern with variables: {triple}")
        self._store.add(triple.subject, triple.predicate, triple.object)
        return self

    def add_all(self, triples: Iterable[Triple | tuple[Term, Term, Term]]) -> Graph:
        """Add every triple from an iterable."""
        for triple in triples:
            self.add(triple)
        return self

    def remove(self, triple: Triple | tuple[Term, Term, Term]) -> Graph:
        """Remove a triple; raise :class:`KeyError` when absent."""
        triple = self._coerce(triple)
        if not self._store.discard(triple.subject, triple.predicate, triple.object):
            raise KeyError(f"triple not in graph: {triple}")
        return self

    def discard(self, triple: Triple | tuple[Term, Term, Term]) -> Graph:
        """Remove a triple if present."""
        triple = self._coerce(triple)
        self._store.discard(triple.subject, triple.predicate, triple.object)
        return self

    def remove_pattern(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> int:
        """Remove every triple matching the pattern; return the count."""
        victims = list(self.triples(subject, predicate, obj))
        for triple in victims:
            self.discard(triple)
        return len(victims)

    def clear(self) -> None:
        """Remove every triple."""
        self._store.clear()

    @staticmethod
    def _coerce(triple: Triple | tuple[Term, Term, Term]) -> Triple:
        if isinstance(triple, Triple):
            return triple
        return Triple(*triple)

    # ------------------------------------------------------------------ #
    # Persistence lifecycle (no-ops on in-memory stores)
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Make pending writes durable on persistent backends."""
        self._store.flush()

    def close(self) -> None:
        """Flush and release backend resources (file handles etc.)."""
        self._store.close()

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def __contains__(self, triple: Triple | tuple[Term, Term, Term]) -> bool:
        triple = self._coerce(triple)
        if triple.variables():
            return False
        return self._store.contains(triple.subject, triple.predicate, triple.object)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Triple]:
        return self._store.triples()

    def __bool__(self) -> bool:
        return bool(self._store)

    def triples(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield triples matching a pattern.

        ``None`` (or a :class:`Variable`) in a position acts as a wildcard.
        The most selective index available for the bound positions is used.
        """
        s = self._normalize(subject)
        p = self._normalize(predicate)
        o = self._normalize(obj)
        if not self._positions_valid(s, p):
            # e.g. a literal in subject/predicate position (a variable bound
            # to a literal by an earlier pattern): nothing can match.
            return iter(())
        return self._store.triples(s, p, o)

    def triples_ids(
        self, s: int = UNBOUND_ID, p: int = UNBOUND_ID, o: int = UNBOUND_ID
    ) -> Iterator[tuple[int, int, int]]:
        """Yield ``(s, p, o)`` dictionary-id triples matching an id pattern.

        :data:`UNBOUND_ID` (0) acts as the wildcard.  This is the batched
        executor's scan entry point: ids come from (and go back into) this
        graph's :attr:`dictionary`, so the executor's join loops stay in
        integer space — no term hashing, no :class:`Triple` construction.
        A non-zero id that never occurs in the asserted position simply
        matches nothing (the id indexes only contain asserted triples, so
        e.g. a literal id used as subject finds an empty bucket).
        """
        return self._store.triples_ids(s, p, o)

    @staticmethod
    def _normalize(term: Term | None) -> Term | None:
        """Variables behave as wildcards when used in graph-level matching."""
        if term is None or isinstance(term, Variable):
            return None
        return term

    @staticmethod
    def _positions_valid(s: Term | None, p: Term | None) -> bool:
        """Whether the ground lookup terms can occupy their positions at all."""
        if s is not None and not isinstance(s, (URIRef, BNode)):
            return False
        if p is not None and not isinstance(p, URIRef):
            return False
        return True

    # ------------------------------------------------------------------ #
    # Cardinalities (used by the query planner)
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> GraphStatistics:
        """Live, incrementally maintained cardinality statistics."""
        return self._store.stats

    @property
    def dictionary(self) -> TermDictionary:
        """This graph's term-interning dictionary (see :class:`TermDictionary`).

        Ids are lazily assigned by the batched executor; removing a triple
        does not retire ids (they are tiny and stay valid for row tuples
        held by in-flight queries).
        """
        return self._store.dictionary

    def cardinality(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> int:
        """Exact number of triples matching the pattern, without enumerating.

        ``None`` (or a :class:`Variable`) acts as a wildcard, mirroring
        :meth:`triples`.  Two- and three-bound patterns are answered from
        the permutation-index buckets; one-bound patterns from the
        incrementally maintained per-term counters; the all-wildcard
        pattern from the triple count.
        """
        s = self._normalize(subject)
        p = self._normalize(predicate)
        o = self._normalize(obj)
        if not self._positions_valid(s, p):
            return 0
        return self._store.cardinality(s, p, o)

    def match_pattern(self, pattern: Triple) -> Iterator[Triple]:
        """Yield triples matching a :class:`Triple` pattern (variables wild)."""
        return self.triples(pattern.subject, pattern.predicate, pattern.object)

    def subjects(
        self, predicate: Term | None = None, obj: Term | None = None
    ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        seen: set[Term] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(
        self, subject: Term | None = None, obj: Term | None = None
    ) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen: set[Term] = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(
        self, subject: Term | None = None, predicate: Term | None = None
    ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen: set[Term] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
        default: Term | None = None,
    ) -> Term | None:
        """Return the single missing component of a triple, or ``default``.

        Exactly one of the three positions must be ``None``; the first
        matching value is returned (no uniqueness check, mirroring rdflib).
        """
        positions = [subject, predicate, obj]
        if positions.count(None) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for triple in self.triples(subject, predicate, obj):
            if subject is None:
                return triple.subject
            if predicate is None:
                return triple.predicate
            return triple.object
        return default

    def subjects_of_type(self, rdf_type: URIRef) -> Iterator[Term]:
        """Distinct subjects with ``rdf:type rdf_type``."""
        return self.subjects(RDF.type, rdf_type)

    # ------------------------------------------------------------------ #
    # Vocabulary statistics (used by voiD descriptions)
    # ------------------------------------------------------------------ #
    def predicate_histogram(self) -> dict[Term, int]:
        """Map each predicate to the number of triples using it."""
        return dict(self.stats.predicate_counts)

    def class_histogram(self) -> dict[Term, int]:
        """Map each ``rdf:type`` object to its instance count."""
        return dict(self.stats.class_counts)

    def vocabularies(self) -> set[str]:
        """Namespace URIs of every predicate and class used in the graph.

        Derived from the statistics counters rather than a triple scan, so
        it stays cheap on disk-backed stores.
        """
        spaces: set[str] = set()
        for predicate in self.stats.predicate_counts:
            if isinstance(predicate, URIRef):
                spaces.add(predicate.namespace_split()[0])
        for klass in self.stats.class_counts:
            if isinstance(klass, URIRef):
                spaces.add(klass.namespace_split()[0])
        spaces.discard("")
        return spaces

    # ------------------------------------------------------------------ #
    # Set algebra (results are always in-memory graphs)
    # ------------------------------------------------------------------ #
    def copy(self) -> Graph:
        """Shallow copy preserving identifier and namespace bindings."""
        clone = Graph(identifier=self._identifier,
                      namespace_manager=self.namespace_manager.copy())
        clone.add_all(self)
        return clone

    def __add__(self, other: Graph) -> Graph:
        result = self.copy()
        result.add_all(other)
        return result

    def __iadd__(self, other: Iterable[Triple]) -> Graph:
        self.add_all(other)
        return self

    def __sub__(self, other: Graph) -> Graph:
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(t for t in self if t not in other)
        return result

    def __and__(self, other: Graph) -> Graph:
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(t for t in self if t in other)
        return result

    def __eq__(self, other: object) -> bool:
        """Exact set equality (not bnode-isomorphism; see ``isomorphism``).

        Works across storage backends: two graphs are equal when they hold
        the same triple set, regardless of where each set lives.
        """
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(triple in other for triple in self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        return id(self)

    # ------------------------------------------------------------------ #
    # Convenience I/O hooks (implemented in repro.turtle)
    # ------------------------------------------------------------------ #
    def serialize(self, format: str = "turtle") -> str:
        """Serialise the graph to ``turtle`` or ``ntriples`` text."""
        from ..turtle import serialize_graph

        return serialize_graph(self, format=format)

    @classmethod
    def parse(cls, text: str, format: str = "turtle",
              identifier: URIRef | None = None) -> Graph:
        """Parse Turtle or N-Triples text into a new graph."""
        from ..turtle import parse_graph

        graph = parse_graph(text, format=format)
        if identifier is not None:
            graph._identifier = identifier
        return graph

    @classmethod
    def load(cls, path, format: str | None = None,
             identifier: URIRef | None = None, store: Store | None = None) -> Graph:
        """Parse an RDF file into a graph.

        ``format`` defaults from the file suffix (``.ttl`` -> turtle,
        ``.nt`` -> ntriples).  Pass ``store=`` to load into a specific
        backend (e.g. populate a :class:`SegmentStore` from a file).
        """
        source = Path(path)
        if format is None:
            format = _SUFFIX_FORMATS.get(source.suffix.lower(), "turtle")
        parsed = cls.parse(source.read_text(encoding="utf-8"),
                           format=format, identifier=identifier)
        if store is None:
            return parsed
        graph = cls(identifier=identifier,
                    namespace_manager=parsed.namespace_manager, store=store)
        graph.add_all(parsed)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = str(self._identifier) if self._identifier else "anonymous"
        return f"<Graph {name} with {len(self)} triples>"


class GraphView:
    """Immutable facade over a :class:`Graph`.

    Local SPARQL endpoints hand this view to query evaluation so that a
    federated query can never mutate the dataset it reads.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def triples(self, subject=None, predicate=None, obj=None) -> Iterator[Triple]:
        return self._graph.triples(subject, predicate, obj)

    def match_pattern(self, pattern: Triple) -> Iterator[Triple]:
        return self._graph.match_pattern(pattern)

    def triples_ids(self, s=UNBOUND_ID, p=UNBOUND_ID, o=UNBOUND_ID):
        return self._graph.triples_ids(s, p, o)

    def cardinality(self, subject=None, predicate=None, obj=None) -> int:
        return self._graph.cardinality(subject, predicate, obj)

    @property
    def stats(self) -> GraphStatistics:
        return self._graph.stats

    @property
    def dictionary(self) -> TermDictionary:
        return self._graph.dictionary

    @property
    def version(self) -> int:
        return self._graph.version

    def __contains__(self, triple) -> bool:
        return triple in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._graph)

    @property
    def identifier(self) -> URIRef | None:
        return self._graph.identifier

    @property
    def namespace_manager(self) -> NamespaceManager:
        return self._graph.namespace_manager


class ReadOnlyGraphView(GraphView):
    """Deprecated alias of :class:`GraphView` (renamed in the Store redesign)."""

    def __init__(self, graph: Graph) -> None:
        warnings.warn(
            "ReadOnlyGraphView is deprecated; use GraphView",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(graph)
