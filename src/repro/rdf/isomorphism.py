"""Blank-node aware RDF graph comparison.

Two RDF graphs are *isomorphic* when one can be obtained from the other by
renaming blank nodes.  Exact set equality is too strict for tests that
compare generated graphs (e.g. the reified alignment serialisation round
trips of Experiment E2), because blank node labels are implementation
artefacts.

The implementation follows the classic "colour refinement + backtracking"
approach: ground triples must match exactly, blank nodes are partitioned by
a structural signature that is iteratively refined and a backtracking
search establishes the final bijection.  Graphs appearing in this codebase
are small (alignment descriptions, test fixtures), so the worst-case
exponential behaviour of the backtracking step is not a concern.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from .graph import Graph
from .terms import BNode, Term
from .triple import Triple

__all__ = ["isomorphic", "canonical_hash", "bnode_signatures"]


def _split(graph: Iterable[Triple]) -> tuple[set, list[Triple]]:
    """Separate ground triples from triples mentioning blank nodes."""
    ground = set()
    with_bnodes = []
    for triple in graph:
        if triple.bnodes():
            with_bnodes.append(triple)
        else:
            ground.add(triple)
    return ground, with_bnodes


def bnode_signatures(triples: Iterable[Triple], rounds: int = 4) -> dict[BNode, str]:
    """Compute a structural signature for every blank node.

    The signature of a node starts from the multiset of (position,
    predicate, other-term-if-ground) facts it participates in, then is
    refined by folding in neighbouring blank node signatures for a fixed
    number of rounds (a simplified WL colour refinement).
    """
    triples = list(triples)
    adjacency: dict[BNode, list[tuple[str, str, BNode | None]]] = defaultdict(list)
    for triple in triples:
        s, p, o = triple.as_tuple()
        if isinstance(s, BNode):
            other = o if isinstance(o, BNode) else None
            label = "" if isinstance(o, BNode) else o.n3()
            adjacency[s].append(("S", f"{p.n3()}|{label}", other))
        if isinstance(o, BNode):
            other = s if isinstance(s, BNode) else None
            label = "" if isinstance(s, BNode) else s.n3()
            adjacency[o].append(("O", f"{p.n3()}|{label}", other))

    signatures: dict[BNode, str] = {
        node: "|".join(sorted(f"{pos}:{desc}" for pos, desc, _ in facts))
        for node, facts in adjacency.items()
    }
    for _ in range(rounds):
        refined: dict[BNode, str] = {}
        for node, facts in adjacency.items():
            parts = []
            for pos, desc, other in facts:
                neighbour = signatures.get(other, "") if other is not None else ""
                parts.append(f"{pos}:{desc}:{hash(neighbour) & 0xFFFFFFFF:x}")
            refined[node] = "|".join(sorted(parts))
        signatures = refined
    return signatures


def isomorphic(left: Graph | Iterable[Triple], right: Graph | Iterable[Triple]) -> bool:
    """True when the two graphs are equal up to blank-node renaming."""
    left_triples = list(left)
    right_triples = list(right)
    if len(left_triples) != len(right_triples):
        return False

    left_ground, left_pattern = _split(left_triples)
    right_ground, right_pattern = _split(right_triples)
    if left_ground != right_ground:
        return False
    if len(left_pattern) != len(right_pattern):
        return False
    if not left_pattern:
        return True

    left_sig = bnode_signatures(left_triples)
    right_sig = bnode_signatures(right_triples)
    if sorted(left_sig.values()) != sorted(right_sig.values()):
        return False

    # Candidate sets per left bnode: right bnodes sharing the signature.
    candidates: dict[BNode, list[BNode]] = {}
    right_by_sig: dict[str, list[BNode]] = defaultdict(list)
    for node, sig in right_sig.items():
        right_by_sig[sig].append(node)
    for node, sig in left_sig.items():
        candidates[node] = list(right_by_sig.get(sig, []))
        if not candidates[node]:
            return False

    right_pattern_set = set(right_pattern)
    order = sorted(candidates, key=lambda n: (len(candidates[n]), n.sort_key()))

    def assign(index: int, mapping: dict[BNode, BNode], used: set) -> bool:
        if index == len(order):
            return _check_mapping(left_pattern, right_pattern_set, mapping)
        node = order[index]
        for candidate in candidates[node]:
            if candidate in used:
                continue
            mapping[node] = candidate
            used.add(candidate)
            if _consistent(left_pattern, right_pattern_set, mapping) and assign(
                index + 1, mapping, used
            ):
                return True
            used.discard(candidate)
            del mapping[node]
        return False

    return assign(0, {}, set())


def _apply_mapping(triple: Triple, mapping: dict[BNode, BNode]) -> Triple | None:
    terms = []
    for term in triple:
        if isinstance(term, BNode):
            mapped = mapping.get(term)
            if mapped is None:
                return None
            terms.append(mapped)
        else:
            terms.append(term)
    return Triple(*terms)


def _check_mapping(left_pattern: list[Triple], right_set: set, mapping: dict[BNode, BNode]) -> bool:
    for triple in left_pattern:
        mapped = _apply_mapping(triple, mapping)
        if mapped is None or mapped not in right_set:
            return False
    return True


def _consistent(left_pattern: list[Triple], right_set: set, mapping: dict[BNode, BNode]) -> bool:
    """Partial-mapping consistency: fully mapped triples must exist on the right."""
    for triple in left_pattern:
        mapped = _apply_mapping(triple, mapping)
        if mapped is not None and mapped not in right_set:
            return False
    return True


def canonical_hash(graph: Graph | Iterable[Triple]) -> int:
    """A hash that is invariant under blank node renaming.

    Not a perfect canonicalisation (signature collisions are possible for
    pathological automorphic graphs) but adequate for caching and quick
    inequality checks; equal graphs always produce equal hashes.
    """
    triples = list(graph)
    signatures = bnode_signatures(triples)

    def term_key(term: Term) -> str:
        if isinstance(term, BNode):
            return "B:" + signatures.get(term, "")
        return term.n3()

    keys = sorted(
        f"{term_key(t.subject)}{term_key(t.predicate)}{term_key(t.object)}"
        for t in triples
    )
    return hash(tuple(keys))
