"""RDF term model.

This module defines the node types that appear in RDF triples and SPARQL
queries:

* :class:`URIRef` -- an IRI identifying a resource.
* :class:`Literal` -- a data value with optional language tag or datatype.
* :class:`BNode` -- a blank (anonymous) node, interpreted as an
  existentially quantified variable following the RDF semantics adopted by
  the paper (Hayes, *RDF Semantics*, W3C 2004).
* :class:`Variable` -- a SPARQL query variable (``?x`` / ``$x``).

All terms are immutable, hashable and totally ordered (ordering is used for
deterministic serialisation and result presentation, not for semantics).

The design mirrors the small fragment of the Jena/rdflib node APIs that the
rewriting algorithm of Correndo et al. requires: the paper's ``match``
function only needs to distinguish *variables* (query variables and blank
nodes in alignment patterns) from *ground terms* (URIs and literals).
"""

from __future__ import annotations

import re
from decimal import Decimal, InvalidOperation
from typing import Any

__all__ = [
    "Term",
    "Identifier",
    "URIRef",
    "Literal",
    "BNode",
    "Variable",
    "XSD",
    "is_ground",
    "is_variable_like",
    "fresh_bnode",
    "reset_bnode_counter",
]


class Term:
    """Abstract base class of every RDF term.

    Concrete subclasses are :class:`URIRef`, :class:`Literal`,
    :class:`BNode` and :class:`Variable`.  Terms behave as value objects:
    equality and hashing are structural.
    """

    __slots__ = ()

    #: Sort key rank used for the total order across term kinds.
    _rank = 99

    def n3(self) -> str:
        """Return the N3/Turtle textual form of the term."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        """Key usable to order heterogeneous terms deterministically."""
        return (self._rank, str(self))

    def __lt__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class Identifier(Term):
    """Base class for terms identified by a single string value."""

    __slots__ = ("_value",)

    def __init__(self, value: str) -> None:
        self._value = str(value)

    @property
    def value(self) -> str:
        """The raw string carried by the identifier."""
        return self._value

    def __str__(self) -> str:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._value!r})"

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._value == other._value

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._value))


_IRI_ILLEGAL = re.compile(r"[<>\"{}|^`\\\x00-\x20]")


class URIRef(Identifier):
    """An IRI reference (the paper's set ``I``).

    The constructor performs a light validation: characters that are never
    legal inside an IRI reference (angle brackets, spaces, control
    characters) raise :class:`ValueError`.  Full RFC 3987 validation is out
    of scope; Linked Data URIs in the wild are frequently sloppy and the
    original system accepted them as-is.
    """

    __slots__ = ()
    _rank = 1

    def __init__(self, value: str, base: str | None = None) -> None:
        value = str(value)
        if base is not None and not _has_scheme(value):
            value = resolve_relative(base, value)
        if _IRI_ILLEGAL.search(value):
            raise ValueError(f"invalid character in IRI: {value!r}")
        super().__init__(value)

    def n3(self) -> str:
        return f"<{self._value}>"

    def defrag(self) -> URIRef:
        """Return the URI without its fragment part."""
        if "#" in self._value:
            return URIRef(self._value.split("#", 1)[0])
        return self

    def namespace_split(self) -> tuple[str, str]:
        """Split the URI into a (namespace, local-name) pair.

        The split point is after the last ``#`` or ``/`` character; if
        neither occurs the namespace is the empty string.
        """
        value = self._value
        for sep in ("#", "/"):
            if sep in value:
                idx = value.rindex(sep)
                return value[: idx + 1], value[idx + 1 :]
        return "", value

    def startswith(self, prefix: str) -> bool:
        """Convenience wrapper over ``str.startswith`` for URI prefixes."""
        return self._value.startswith(prefix)


def _has_scheme(value: str) -> bool:
    return bool(re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", value))


def resolve_relative(base: str, relative: str) -> str:
    """Resolve ``relative`` against ``base`` (simplified RFC 3986 merge).

    Supports the cases that occur in Turtle documents with ``@base``:
    fragment-only references, absolute paths and relative paths.
    """
    if not relative:
        return base
    if relative.startswith("#"):
        return base.split("#", 1)[0] + relative
    if relative.startswith("//"):
        scheme = base.split(":", 1)[0]
        return f"{scheme}:{relative}"
    if relative.startswith("/"):
        match = re.match(r"^([A-Za-z][A-Za-z0-9+.-]*://[^/]*)", base)
        root = match.group(1) if match else base.rstrip("/")
        return root + relative
    # Relative path: replace everything after the last '/'.
    if "/" in base:
        return base.rsplit("/", 1)[0] + "/" + relative
    return relative


class _XSD:
    """Tiny holder of the XML Schema datatype URIs used by literals."""

    _NS = "http://www.w3.org/2001/XMLSchema#"

    def __getattr__(self, name: str) -> URIRef:
        return URIRef(self._NS + name)

    @property
    def namespace(self) -> str:
        return self._NS


XSD = _XSD()

#: Datatypes whose lexical forms are interpreted as Python numbers.
_NUMERIC_DATATYPES = {
    str(XSD.integer),
    str(XSD.int),
    str(XSD.long),
    str(XSD.short),
    str(XSD.byte),
    str(XSD.nonNegativeInteger),
    str(XSD.positiveInteger),
    str(XSD.negativeInteger),
    str(XSD.nonPositiveInteger),
    str(XSD.unsignedInt),
    str(XSD.unsignedLong),
    str(XSD.decimal),
    str(XSD.float),
    str(XSD.double),
}

_INTEGER_DATATYPES = {
    str(XSD.integer),
    str(XSD.int),
    str(XSD.long),
    str(XSD.short),
    str(XSD.byte),
    str(XSD.nonNegativeInteger),
    str(XSD.positiveInteger),
    str(XSD.negativeInteger),
    str(XSD.nonPositiveInteger),
    str(XSD.unsignedInt),
    str(XSD.unsignedLong),
}


class Literal(Term):
    """An RDF literal: lexical form + optional language tag or datatype.

    ``Literal`` accepts native Python values and infers the datatype:

    >>> Literal(42).datatype == XSD.integer
    True
    >>> Literal(True).lexical
    'true'
    >>> Literal("bonjour", lang="fr").lang
    'fr'

    Value-space comparison (used by SPARQL FILTER evaluation) is exposed by
    :meth:`to_python` and :meth:`value_equals`.
    """

    __slots__ = ("_lexical", "_lang", "_datatype")
    _rank = 3

    def __init__(
        self,
        value: str | int | float | bool | Decimal,
        lang: str | None = None,
        datatype: URIRef | None = None,
    ) -> None:
        if lang is not None and datatype is not None:
            raise ValueError("a literal cannot carry both a language tag and a datatype")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD.boolean
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD.integer
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD.double
        elif isinstance(value, Decimal):
            lexical = str(value)
            datatype = datatype or XSD.decimal
        else:
            lexical = str(value)
        if lang is not None:
            lang = lang.lower()
            if not re.match(r"^[a-z]+(-[a-z0-9]+)*$", lang):
                raise ValueError(f"malformed language tag: {lang!r}")
        self._lexical = lexical
        self._lang = lang
        self._datatype = datatype

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def lexical(self) -> str:
        """The lexical form (the literal's string content)."""
        return self._lexical

    @property
    def lang(self) -> str | None:
        """The language tag, lower-cased, or ``None``."""
        return self._lang

    @property
    def datatype(self) -> URIRef | None:
        """The datatype URI, or ``None`` for a plain literal."""
        return self._datatype

    # ------------------------------------------------------------------ #
    # Value space
    # ------------------------------------------------------------------ #
    def to_python(self) -> Any:
        """Map the literal into the Python value space.

        Numeric datatypes become ``int``/``float``/``Decimal``, booleans
        become ``bool``; anything else (including malformed numerics) is
        returned as the plain lexical string.
        """
        if self._datatype is None:
            return self._lexical
        dt = str(self._datatype)
        try:
            if dt in _INTEGER_DATATYPES:
                return int(self._lexical)
            if dt == str(XSD.decimal):
                return Decimal(self._lexical)
            if dt in (str(XSD.float), str(XSD.double)):
                return float(self._lexical)
            if dt == str(XSD.boolean):
                return self._lexical.strip().lower() in ("true", "1")
        except (ValueError, InvalidOperation):
            return self._lexical
        return self._lexical

    def is_numeric(self) -> bool:
        """True when the datatype is one of the XSD numeric types."""
        return self._datatype is not None and str(self._datatype) in _NUMERIC_DATATYPES

    def value_equals(self, other: Literal) -> bool:
        """Value-space equality (``"1"^^xsd:integer == "01"^^xsd:int``)."""
        if not isinstance(other, Literal):
            return False
        if self.is_numeric() and other.is_numeric():
            return self.to_python() == other.to_python()
        return self == other

    # ------------------------------------------------------------------ #
    # Term protocol
    # ------------------------------------------------------------------ #
    def n3(self) -> str:
        escaped = (
            self._lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        body = f'"{escaped}"'
        if self._lang is not None:
            return f"{body}@{self._lang}"
        if self._datatype is not None:
            return f"{body}^^{self._datatype.n3()}"
        return body

    def __str__(self) -> str:
        return self._lexical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self._lang:
            extra = f", lang={self._lang!r}"
        elif self._datatype is not None:
            extra = f", datatype={str(self._datatype)!r}"
        return f"Literal({self._lexical!r}{extra})"

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, Literal)
            and self._lexical == other._lexical
            and self._lang == other._lang
            and self._datatype == other._datatype
        )

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("Literal", self._lexical, self._lang, self._datatype))

    def sort_key(self) -> tuple:
        return (self._rank, self._lexical, self._lang or "", str(self._datatype or ""))


_bnode_counter = 0


def reset_bnode_counter() -> None:
    """Reset the automatic blank-node label counter (useful in tests)."""
    global _bnode_counter
    _bnode_counter = 0


def fresh_bnode(prefix: str = "b") -> BNode:
    """Return a new blank node with a label unique within the process."""
    global _bnode_counter
    _bnode_counter += 1
    return BNode(f"{prefix}{_bnode_counter}")


class BNode(Identifier):
    """A blank node.

    Per the RDF semantics used by the paper, a blank node denotes an
    existentially quantified variable; in alignment patterns (`_:p1`,
    `_:a1`, ...) blank nodes therefore behave like variables during
    matching (see :func:`is_variable_like`).
    """

    __slots__ = ()
    _rank = 2

    def __init__(self, value: str | None = None) -> None:
        if value is None:
            value = fresh_bnode().value
        value = str(value)
        if value.startswith("_:"):
            value = value[2:]
        if not value or not re.match(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$", value):
            raise ValueError(f"malformed blank node label: {value!r}")
        super().__init__(value)

    def n3(self) -> str:
        return f"_:{self._value}"

    def to_variable(self) -> Variable:
        """Translate the blank node into the SPARQL variable ``?<label>``.

        The paper's alignment semantics interprets blank nodes in LHS/RHS
        patterns as variables; this helper performs that reading.
        """
        return Variable(self._value)


class Variable(Identifier):
    """A SPARQL query variable (``?name``)."""

    __slots__ = ()
    _rank = 0

    def __init__(self, value: str) -> None:
        value = str(value)
        if value and value[0] in "?$":
            value = value[1:]
        if not value or not re.match(r"^[A-Za-z0-9_][A-Za-z0-9_]*$", value):
            raise ValueError(f"malformed variable name: {value!r}")
        super().__init__(value)

    @property
    def name(self) -> str:
        """The variable name without the leading ``?``."""
        return self._value

    def n3(self) -> str:
        return f"?{self._value}"


def is_ground(term: Term) -> bool:
    """True when the term is a ground value (URI or literal)."""
    return isinstance(term, (URIRef, Literal))


def is_variable_like(term: Term) -> bool:
    """True when the term acts as a variable during pattern matching.

    Both SPARQL variables and blank nodes qualify: the paper treats blank
    nodes in alignment patterns as existentially quantified variables.
    """
    return isinstance(term, (Variable, BNode))
