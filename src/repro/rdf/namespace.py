"""Namespaces, prefix management and the vocabularies used by the paper.

Provides:

* :class:`Namespace` -- build URIs by attribute or item access
  (``AKT.has_author`` / ``AKT["has-author"]``).
* :class:`NamespaceManager` -- bidirectional prefix <-> namespace mapping
  used by the Turtle/SPARQL serialisers to produce compact output.
* Constants for the vocabularies that appear in the paper: RDF, RDFS, OWL,
  XSD, FOAF, Dublin Core, voiD, the AKT reference ontology, the KISTI
  ontology, the sameas.org wrapper namespace and the alignment (``map:``)
  vocabulary of Section 3.2.2.
"""

from __future__ import annotations

from collections.abc import Iterator

from .terms import URIRef

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD_NS",
    "FOAF",
    "DC",
    "VOID",
    "SKOS",
    "AKT",
    "KISTI",
    "DBPO",
    "MAP",
    "ALIGN_FN",
    "RKB_ID",
    "KISTI_ID",
    "DBPEDIA_RES",
    "DEFAULT_PREFIXES",
]


class Namespace:
    """A URI namespace that mints :class:`URIRef` terms.

    >>> AKT = Namespace("http://www.aktors.org/ontology/portal#")
    >>> AKT["has-author"]
    URIRef('http://www.aktors.org/ontology/portal#has-author')
    >>> AKT.Person
    URIRef('http://www.aktors.org/ontology/portal#Person')
    """

    __slots__ = ("_base",)

    def __init__(self, base: str) -> None:
        self._base = str(base)

    @property
    def base(self) -> str:
        """The namespace URI string."""
        return self._base

    def term(self, name: str) -> URIRef:
        """Mint the URI ``<base><name>``."""
        return URIRef(self._base + name)

    def __getitem__(self, name: str) -> URIRef:
        return self.term(name)

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __contains__(self, uri: object) -> bool:
        return isinstance(uri, URIRef) and str(uri).startswith(self._base)

    def local_name(self, uri: URIRef) -> str:
        """Return the part of ``uri`` after this namespace.

        Raises :class:`ValueError` when the URI is not in the namespace.
        """
        if uri not in self:
            raise ValueError(f"{uri} is not in namespace {self._base}")
        return str(uri)[len(self._base):]

    def __str__(self) -> str:
        return self._base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Namespace({self._base!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and self._base == other._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))


# --------------------------------------------------------------------------- #
# Standard vocabularies
# --------------------------------------------------------------------------- #
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
VOID = Namespace("http://rdfs.org/ns/void#")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")

# --------------------------------------------------------------------------- #
# Vocabularies from the paper's integration scenario
# --------------------------------------------------------------------------- #
#: AKT reference ontology used by the ReSIST / RKB explorer repositories.
AKT = Namespace("http://www.aktors.org/ontology/portal#")
#: KISTI research-reference ontology (target of the worked example).
KISTI = Namespace("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
#: DBpedia ontology (target of the 42-alignment KB of Section 3.4).
DBPO = Namespace("http://dbpedia.org/ontology/")
#: Alignment vocabulary of the Turtle listing in Section 3.2.2.
MAP = Namespace("http://ecs.soton.ac.uk/om.owl#")
#: Namespace identifying data-manipulation functions (Section 3.2.2 notes
#: that functions are identified by URIs).
ALIGN_FN = Namespace("http://ecs.soton.ac.uk/om.owl#fn/")
#: Instance URI spaces of the three datasets in the scenario.
RKB_ID = Namespace("http://southampton.rkbexplorer.com/id/")
KISTI_ID = Namespace("http://kisti.rkbexplorer.com/id/")
DBPEDIA_RES = Namespace("http://dbpedia.org/resource/")

#: Prefix table installed by default on new :class:`NamespaceManager`s.
DEFAULT_PREFIXES: dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD_NS,
    "foaf": FOAF,
    "dc": DC,
    "void": VOID,
    "skos": SKOS,
    "akt": AKT,
    "kisti": KISTI,
    "dbo": DBPO,
    "map": MAP,
    "id": RKB_ID,
    "kid": KISTI_ID,
    "dbr": DBPEDIA_RES,
}


class NamespaceManager:
    """Bidirectional prefix registry used for parsing and serialisation."""

    def __init__(self, install_defaults: bool = True) -> None:
        self._prefix_to_ns: dict[str, str] = {}
        self._ns_to_prefix: dict[str, str] = {}
        if install_defaults:
            for prefix, namespace in DEFAULT_PREFIXES.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: Namespace | str, replace: bool = True) -> None:
        """Associate ``prefix`` with ``namespace``.

        When ``replace`` is false an existing binding for the prefix is
        kept and the call is a no-op.
        """
        base = str(namespace)
        if prefix in self._prefix_to_ns and not replace:
            return
        old = self._prefix_to_ns.get(prefix)
        if old is not None and self._ns_to_prefix.get(old) == prefix:
            del self._ns_to_prefix[old]
        self._prefix_to_ns[prefix] = base
        # Keep the first prefix registered for a namespace for serialisation.
        self._ns_to_prefix.setdefault(base, prefix)

    def namespace(self, prefix: str) -> str | None:
        """The namespace bound to ``prefix``, or ``None``."""
        return self._prefix_to_ns.get(prefix)

    def prefix(self, namespace: str) -> str | None:
        """The prefix bound to ``namespace``, or ``None``."""
        return self._ns_to_prefix.get(str(namespace))

    def expand(self, qname: str) -> URIRef:
        """Expand a ``prefix:local`` qualified name into a URI.

        Raises :class:`KeyError` if the prefix is unbound.
        """
        if ":" not in qname:
            raise ValueError(f"not a qualified name: {qname!r}")
        prefix, local = qname.split(":", 1)
        base = self._prefix_to_ns.get(prefix)
        if base is None:
            raise KeyError(f"unbound prefix: {prefix!r}")
        return URIRef(base + local)

    def compact(self, uri: URIRef) -> str | None:
        """Return ``prefix:local`` for the URI when a binding allows it.

        The local part must be a simple name (no ``/``, ``#`` or spaces);
        otherwise ``None`` is returned and the caller should emit the full
        ``<...>`` form.
        """
        value = str(uri)
        best: tuple[str, str] | None = None
        for base, prefix in self._ns_to_prefix.items():
            if value.startswith(base) and (best is None or len(base) > len(best[0])):
                best = (base, prefix)
        if best is None:
            return None
        base, prefix = best
        local = value[len(base):]
        if local and not _is_safe_local_name(local):
            return None
        return f"{prefix}:{local}"

    def namespaces(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(prefix, namespace)`` bindings."""
        return iter(sorted(self._prefix_to_ns.items()))

    def copy(self) -> NamespaceManager:
        """Return an independent copy of this manager."""
        clone = NamespaceManager(install_defaults=False)
        for prefix, base in self._prefix_to_ns.items():
            clone.bind(prefix, base)
        return clone

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns


def _is_safe_local_name(local: str) -> bool:
    if any(ch in local for ch in " <>\"{}|^`\\/#?"):
        return False
    return True
