"""Storage backends behind :class:`repro.rdf.Graph`.

This module is the storage contract of the whole system.  A
:class:`Store` holds one set of ground triples and answers the five
questions every engine layer asks of it:

* *membership and mutation* — :meth:`Store.add`, :meth:`Store.discard`,
  :meth:`Store.contains`;
* *pattern scans* — :meth:`Store.triples` (term level) and
  :meth:`Store.triples_ids` (interned-id level, the batched executor's
  entry point);
* *exact cardinalities* — :meth:`Store.cardinality`, O(1)-ish for any
  pattern shape, feeding the PR 3 query planner;
* *vocabulary statistics* — :attr:`Store.stats`, the incrementally
  maintained per-term counters behind voiD publishing and source
  selection;
* *the term dictionary* — :attr:`Store.dictionary`, the bidirectional
  term <-> int interning table whose ids appear in executor row tuples.

Two implementations ship:

* :class:`MemoryStore` — nested-dict SPO/POS/OSP permutation indexes over
  interned ids, entirely in RAM.  This is the historical ``Graph``
  behaviour, now behind the contract.
* :class:`SegmentStore` — a persistent store: immutable sorted SPO/POS/OSP
  index segments on disk (24-byte fixed-width records, binary-searched
  with positional reads so a query never loads a full segment), an
  append-only interned term dictionary, a small in-memory write buffer
  flushed to new segments, tombstone-based deletes and segment-merge
  compaction.  Exact per-segment statistics are persisted next to each
  segment so a cold open rebuilds the planner's counters without scanning
  any data.

:func:`open_graph` is the user-facing factory: ``open_graph(None)`` gives
an in-memory graph, ``open_graph(path)`` opens (or creates) a persistent
one.
"""

from __future__ import annotations

import heapq
import json
import os
import struct
import threading
from collections.abc import Iterable, Iterator
from pathlib import Path

from .namespace import RDF
from .terms import BNode, Literal, Term, URIRef
from .triple import Triple

__all__ = [
    "UNBOUND_ID",
    "TermDictionary",
    "GraphStatistics",
    "Store",
    "MemoryStore",
    "SegmentStore",
    "StoreError",
    "open_store",
    "open_graph",
]

#: Reserved dictionary id meaning "no term bound here".  Kept falsy on
#: purpose: executor hot loops test ``if term_id:`` instead of comparing.
UNBOUND_ID = 0


class StoreError(RuntimeError):
    """A persistent store directory is unusable (corrupt or mismatched)."""


class TermDictionary:
    """Bidirectional term <-> integer interning table.

    The batched executor (:mod:`repro.sparql.exec`) represents solution
    rows as fixed-width tuples of integers; this dictionary assigns those
    integers.  Each :class:`Store` owns one dictionary (ids are meaningless
    across stores), ids are assigned lazily on first use and stay stable
    for the lifetime of the store — a term is never re-interned to a new
    id, so row tuples survive mutations.  :class:`SegmentStore` persists
    the assignment in an append-only log, so ids are also stable across
    process restarts (segment files reference them).

    Id ``0`` (:data:`UNBOUND_ID`) is reserved for "unbound" and never
    assigned to a term.
    """

    __slots__ = ("_terms", "_ids")

    def __init__(self) -> None:
        self._terms: list = [None]
        self._ids: dict[Term, int] = {}

    def intern(self, term: Term) -> int:
        """The id for ``term``, assigning a fresh one on first sight."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._terms.append(term)
            self._ids[term] = term_id
            self._persist(term)
        return term_id

    def _persist(self, term: Term) -> None:
        """Hook for persistent subclasses; the in-memory table does nothing."""

    def lookup(self, term: Term) -> int:
        """The id for ``term`` without interning (``UNBOUND_ID`` if unseen)."""
        return self._ids.get(term, UNBOUND_ID)

    def decode(self, term_id: int) -> Term:
        """The term behind ``term_id`` (raises for the unbound id)."""
        term = self._terms[term_id]
        if term is None:
            raise KeyError(f"term id {term_id} decodes to no term")
        return term

    @property
    def terms(self) -> list:
        """The id-indexed decode table (index 0 is the unbound slot)."""
        return self._terms

    def __len__(self) -> int:
        return len(self._terms) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TermDictionary {len(self)} terms>"


class GraphStatistics:
    """Incrementally maintained cardinality statistics for one store.

    The query planner orders joins by how many triples each pattern can
    match; these counters answer that question in O(1) for any pattern
    with at most one ground position (two- and three-bound patterns are
    answered exactly from the permutation indexes).  Counts are refreshed
    on every mutation, so they are always exact — no ANALYZE step, no
    staleness.
    """

    __slots__ = ("subject_counts", "predicate_counts", "object_counts", "class_counts")

    def __init__(self) -> None:
        #: triples per subject / predicate / object term.
        self.subject_counts: dict[Term, int] = {}
        self.predicate_counts: dict[Term, int] = {}
        self.object_counts: dict[Term, int] = {}
        #: instances per ``rdf:type`` class (object of an rdf:type triple).
        self.class_counts: dict[Term, int] = {}

    # -- maintenance ------------------------------------------------------ #
    def _record(self, s: Term, p: Term, o: Term, delta: int) -> None:
        for counts, term in (
            (self.subject_counts, s),
            (self.predicate_counts, p),
            (self.object_counts, o),
        ):
            updated = counts.get(term, 0) + delta
            if updated > 0:
                counts[term] = updated
            else:
                counts.pop(term, None)
        if p == RDF.type:
            updated = self.class_counts.get(o, 0) + delta
            if updated > 0:
                self.class_counts[o] = updated
            else:
                self.class_counts.pop(o, None)

    def _clear(self) -> None:
        self.subject_counts.clear()
        self.predicate_counts.clear()
        self.object_counts.clear()
        self.class_counts.clear()

    # -- read API ---------------------------------------------------------- #
    @property
    def distinct_subjects(self) -> int:
        return len(self.subject_counts)

    @property
    def distinct_predicates(self) -> int:
        return len(self.predicate_counts)

    @property
    def distinct_objects(self) -> int:
        return len(self.object_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GraphStatistics s={self.distinct_subjects} "
                f"p={self.distinct_predicates} o={self.distinct_objects} "
                f"classes={len(self.class_counts)}>")


# --------------------------------------------------------------------------- #
# The storage contract
# --------------------------------------------------------------------------- #
class Store:
    """Abstract triple-storage contract behind :class:`repro.rdf.Graph`.

    Implementations provide the id-level half (``add_ids`` is not part of
    the contract — mutation is term-level because statistics are) plus the
    dictionary; the base class derives the term-level query API from it,
    so a backend only has to answer id-pattern scans and counts.

    Pattern arguments are *ground terms or None* — wildcard normalisation
    (``Variable`` acts as ``None``) happens in the :class:`Graph` facade.
    """

    # -- contract ----------------------------------------------------------- #
    @property
    def dictionary(self) -> TermDictionary:
        """This store's term-interning dictionary."""
        raise NotImplementedError

    @property
    def stats(self) -> GraphStatistics:
        """Live, exact per-term cardinality statistics."""
        raise NotImplementedError

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every effective mutation."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def add(self, s: Term, p: Term, o: Term) -> bool:
        """Assert a ground triple; True when it was not already present."""
        raise NotImplementedError

    def discard(self, s: Term, p: Term, o: Term) -> bool:
        """Retract a triple; True when it was present."""
        raise NotImplementedError

    def clear(self) -> None:
        """Remove every triple (the dictionary keeps its assignments)."""
        raise NotImplementedError

    def triples_ids(
        self, s: int = UNBOUND_ID, p: int = UNBOUND_ID, o: int = UNBOUND_ID
    ) -> Iterator[tuple[int, int, int]]:
        """Yield ``(s, p, o)`` dictionary-id triples matching an id pattern
        (:data:`UNBOUND_ID` is the wildcard)."""
        raise NotImplementedError

    def cardinality(
        self, s: Term | None = None, p: Term | None = None, o: Term | None = None
    ) -> int:
        """Exact number of triples matching the pattern, without enumerating."""
        raise NotImplementedError

    # -- lifecycle (no-ops for volatile backends) --------------------------- #
    def flush(self) -> None:
        """Make pending writes durable (no-op for in-memory backends)."""

    def close(self) -> None:
        """Flush and release any resources held by the backend."""

    # -- derived term-level API --------------------------------------------- #
    def _pattern_ids(
        self, s: Term | None, p: Term | None, o: Term | None
    ) -> tuple[int, int, int] | None:
        """Map a ground-or-None pattern onto dictionary ids.

        ``None`` when a ground term was never interned — nothing can match
        (the id indexes only ever contain asserted triples).
        """
        lookup = self.dictionary.lookup
        ids = [UNBOUND_ID, UNBOUND_ID, UNBOUND_ID]
        for position, term in enumerate((s, p, o)):
            if term is None:
                continue
            ids[position] = lookup(term)
            if not ids[position]:
                return None
        return (ids[0], ids[1], ids[2])

    def contains(self, s: Term, p: Term, o: Term) -> bool:
        """Exact ground-triple membership."""
        ids = self._pattern_ids(s, p, o)
        if ids is None:
            return False
        return next(self.triples_ids(*ids), None) is not None

    def triples(
        self, s: Term | None = None, p: Term | None = None, o: Term | None = None
    ) -> Iterator[Triple]:
        """Yield :class:`Triple` objects matching a ground-or-None pattern."""
        ids = self._pattern_ids(s, p, o)
        if ids is None:
            return
        terms = self.dictionary.terms
        for si, pi, oi in self.triples_ids(*ids):
            yield Triple(terms[si], terms[pi], terms[oi])

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return len(self) > 0


# --------------------------------------------------------------------------- #
# Shared id-level permutation index (memory store + segment write buffer)
# --------------------------------------------------------------------------- #
class _IdIndex:
    """SPO/POS/OSP nested-dict indexes over dictionary ids."""

    __slots__ = ("spo", "pos", "osp", "size")

    def __init__(self) -> None:
        self.spo: dict[int, dict[int, set[int]]] = {}
        self.pos: dict[int, dict[int, set[int]]] = {}
        self.osp: dict[int, dict[int, set[int]]] = {}
        self.size = 0

    @staticmethod
    def _insert(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
        index.setdefault(a, {}).setdefault(b, set()).add(c)

    @staticmethod
    def _prune(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
        level = index.get(a)
        if level is None:
            return
        bucket = level.get(b)
        if bucket is None:
            return
        bucket.discard(c)
        if not bucket:
            del level[b]
        if not level:
            del index[a]

    def contains(self, s: int, p: int, o: int) -> bool:
        return o in self.spo.get(s, {}).get(p, ())

    def add(self, s: int, p: int, o: int) -> bool:
        if self.contains(s, p, o):
            return False
        self._insert(self.spo, s, p, o)
        self._insert(self.pos, p, o, s)
        self._insert(self.osp, o, s, p)
        self.size += 1
        return True

    def discard(self, s: int, p: int, o: int) -> bool:
        if not self.contains(s, p, o):
            return False
        self._prune(self.spo, s, p, o)
        self._prune(self.pos, p, o, s)
        self._prune(self.osp, o, s, p)
        self.size -= 1
        return True

    def clear(self) -> None:
        self.spo.clear()
        self.pos.clear()
        self.osp.clear()
        self.size = 0

    def scan(self, s: int, p: int, o: int) -> Iterator[tuple[int, int, int]]:
        """Yield matching id triples via the most selective index."""
        if s and p and o:
            if o in self.spo.get(s, {}).get(p, ()):
                yield (s, p, o)
            return
        if s and p:
            for oi in self.spo.get(s, {}).get(p, ()):
                yield (s, p, oi)
            return
        if p and o:
            for si in self.pos.get(p, {}).get(o, ()):
                yield (si, p, o)
            return
        if s and o:
            for pi in self.osp.get(o, {}).get(s, ()):
                yield (s, pi, o)
            return
        if s:
            for pi, objects in self.spo.get(s, {}).items():
                for oi in objects:
                    yield (s, pi, oi)
            return
        if p:
            for oi, subjects in self.pos.get(p, {}).items():
                for si in subjects:
                    yield (si, p, oi)
            return
        if o:
            for si, predicates in self.osp.get(o, {}).items():
                for pi in predicates:
                    yield (si, pi, o)
            return
        for si, by_predicate in self.spo.items():
            for pi, objects in by_predicate.items():
                for oi in objects:
                    yield (si, pi, oi)

    def count(self, s: int, p: int, o: int) -> int:
        """Exact match count for any id-pattern shape."""
        if s and p and o:
            return 1 if self.contains(s, p, o) else 0
        if s and p:
            return len(self.spo.get(s, {}).get(p, ()))
        if p and o:
            return len(self.pos.get(p, {}).get(o, ()))
        if s and o:
            return len(self.osp.get(o, {}).get(s, ()))
        if s:
            return sum(len(bucket) for bucket in self.spo.get(s, {}).values())
        if p:
            return sum(len(bucket) for bucket in self.pos.get(p, {}).values())
        if o:
            return sum(len(bucket) for bucket in self.osp.get(o, {}).values())
        return self.size


# --------------------------------------------------------------------------- #
# MemoryStore
# --------------------------------------------------------------------------- #
class MemoryStore(Store):
    """The volatile backend: id-level permutation indexes in nested dicts.

    This is the historical :class:`Graph` representation moved behind the
    :class:`Store` contract.  Statistics are maintained term-keyed on the
    way in (the mutation API is term-level), so :attr:`stats` is always a
    live object — no materialisation step.
    """

    def __init__(self) -> None:
        self._index = _IdIndex()
        self._dictionary = TermDictionary()
        self._stats = GraphStatistics()
        self._version = 0

    @property
    def dictionary(self) -> TermDictionary:
        return self._dictionary

    @property
    def stats(self) -> GraphStatistics:
        return self._stats

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return self._index.size

    def add(self, s: Term, p: Term, o: Term) -> bool:
        intern = self._dictionary.intern
        if not self._index.add(intern(s), intern(p), intern(o)):
            return False
        self._stats._record(s, p, o, +1)
        self._version += 1
        return True

    def discard(self, s: Term, p: Term, o: Term) -> bool:
        ids = self._pattern_ids(s, p, o)
        if ids is None or not self._index.discard(*ids):
            return False
        self._stats._record(s, p, o, -1)
        self._version += 1
        return True

    def clear(self) -> None:
        self._index.clear()
        self._stats._clear()
        self._version += 1

    def triples_ids(
        self, s: int = UNBOUND_ID, p: int = UNBOUND_ID, o: int = UNBOUND_ID
    ) -> Iterator[tuple[int, int, int]]:
        return self._index.scan(s, p, o)

    def cardinality(
        self, s: Term | None = None, p: Term | None = None, o: Term | None = None
    ) -> int:
        bound = sum(term is not None for term in (s, p, o))
        if bound == 0:
            return self._index.size
        if bound == 1:
            # O(1) from the incrementally maintained per-term counters.
            if s is not None:
                return self._stats.subject_counts.get(s, 0)
            if p is not None:
                return self._stats.predicate_counts.get(p, 0)
            return self._stats.object_counts.get(o, 0)
        ids = self._pattern_ids(s, p, o)
        if ids is None:
            return 0
        return self._index.count(*ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryStore {self._index.size} triples>"


# --------------------------------------------------------------------------- #
# SegmentStore: on-disk layout helpers
# --------------------------------------------------------------------------- #
_RECORD = struct.Struct(">QQQ")
_RECORD_SIZE = _RECORD.size
#: Records fetched per positional read while range-scanning a segment.
_SCAN_CHUNK = 256
_MANIFEST = "MANIFEST.json"
_TERMS_LOG = "terms.jsonl"
_TOMBSTONES = "tombstones.bin"
_FORMAT_VERSION = 1


def _encode_term(term: Term) -> str:
    if isinstance(term, URIRef):
        payload = ["u", term.value]
    elif isinstance(term, BNode):
        payload = ["b", term.value]
    elif isinstance(term, Literal):
        datatype = str(term.datatype) if term.datatype is not None else None
        payload = ["l", term.lexical, term.lang, datatype]
    else:
        raise StoreError(f"cannot persist non-ground term {term!r}")
    return json.dumps(payload, ensure_ascii=False)


def _decode_term(line: str) -> Term:
    payload = json.loads(line)
    kind = payload[0]
    if kind == "u":
        return URIRef(payload[1])
    if kind == "b":
        return BNode(payload[1])
    if kind == "l":
        _, lexical, lang, datatype = payload
        return Literal(lexical, lang=lang,
                       datatype=URIRef(datatype) if datatype else None)
    raise StoreError(f"unknown term tag {kind!r} in dictionary log")


class _PersistentTermDictionary(TermDictionary):
    """A term dictionary whose assignments append to an on-disk log.

    Replaying the log in order reproduces the exact id assignment, which
    is what makes segment files (pure id records) survive restarts.
    """

    __slots__ = ("_sink",)

    def __init__(self, sink) -> None:
        super().__init__()
        self._sink = sink

    def _persist(self, term: Term) -> None:
        self._sink.write(_encode_term(term) + "\n")


class _IoCounters:
    """Cheap read-traffic accounting for one :class:`SegmentStore`.

    ``records_read`` counts index records actually fetched from disk —
    the E14 benchmark asserts that a LIMIT-ed query reads a small multiple
    of its answer size, not the whole dataset.
    """

    __slots__ = ("records_read", "range_scans", "lookups")

    def __init__(self) -> None:
        self.records_read = 0
        self.range_scans = 0
        self.lookups = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "records_read": self.records_read,
            "range_scans": self.range_scans,
            "lookups": self.lookups,
        }


class _TripleFile:
    """One immutable sorted run of 24-byte ``(a, b, c)`` id records.

    Reads are positional (``os.pread``) so concurrent readers never race
    on a shared file offset; binary search touches O(log n) records and
    range scans stream in small chunks — a query never materialises the
    file.
    """

    __slots__ = ("path", "count", "_fd", "io")

    def __init__(self, path: Path, io: _IoCounters) -> None:
        self.path = path
        self.count = path.stat().st_size // _RECORD_SIZE
        self._fd: int | None = None
        self.io = io

    def _fileno(self) -> int:
        if self._fd is None:
            self._fd = os.open(self.path, os.O_RDONLY)
        return self._fd

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def record(self, index: int) -> tuple[int, int, int]:
        self.io.records_read += 1
        data = os.pread(self._fileno(), _RECORD_SIZE, index * _RECORD_SIZE)
        return _RECORD.unpack(data)  # type: ignore[return-value]

    def lower_bound(self, key: tuple[int, ...]) -> int:
        """Index of the first record ``>= key`` (tuple-prefix comparison)."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.record(mid) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def prefix_range(self, prefix: tuple[int, ...]) -> tuple[int, int]:
        """The ``[lo, hi)`` record range whose tuples start with ``prefix``."""
        self.io.lookups += 1
        if not prefix:
            return 0, self.count
        lo = self.lower_bound(prefix)
        upper = prefix[:-1] + (prefix[-1] + 1,)
        hi = self.lower_bound(upper)
        return lo, hi

    def scan(self, lo: int, hi: int) -> Iterator[tuple[int, int, int]]:
        """Stream records ``[lo, hi)`` in chunked positional reads."""
        self.io.range_scans += 1
        fd = self._fileno()
        index = lo
        while index < hi:
            take = min(_SCAN_CHUNK, hi - index)
            data = os.pread(fd, take * _RECORD_SIZE, index * _RECORD_SIZE)
            self.io.records_read += take
            yield from _RECORD.iter_unpack(data)  # type: ignore[misc]
            index += take


#: Permutation metadata: ordering name -> (store-order of the record
#: tuple, function mapping a record back to (s, p, o)).
_ORDERINGS = {
    "spo": (lambda s, p, o: (s, p, o), lambda t: (t[0], t[1], t[2])),
    "pos": (lambda s, p, o: (p, o, s), lambda t: (t[2], t[0], t[1])),
    "osp": (lambda s, p, o: (o, s, p), lambda t: (t[1], t[2], t[0])),
}


class _Segment:
    """One immutable on-disk segment: three sorted runs plus statistics."""

    __slots__ = ("name", "files", "count", "stats_ids")

    def __init__(self, directory: Path, name: str, io: _IoCounters) -> None:
        self.name = name
        self.files = {
            ordering: _TripleFile(directory / f"{name}.{ordering}", io)
            for ordering in _ORDERINGS
        }
        meta = json.loads((directory / f"{name}.meta.json").read_text(encoding="utf-8"))
        self.count = int(meta["triples"])
        if self.files["spo"].count != self.count:
            raise StoreError(
                f"segment {name}: index holds {self.files['spo'].count} records "
                f"but metadata claims {self.count}"
            )
        #: Per-role id -> count maps persisted at segment-write time.
        self.stats_ids = {
            role: {int(key): value for key, value in meta["stats"][role].items()}
            for role in ("subjects", "predicates", "objects", "classes")
        }

    def close(self) -> None:
        for handle in self.files.values():
            handle.close()

    @staticmethod
    def _plan(s: int, p: int, o: int) -> tuple[str, tuple[int, ...]]:
        """Pick the ordering whose sort prefix covers the bound positions."""
        if s and p:
            return "spo", (s, p, o) if o else (s, p)
        if p:
            return "pos", (p, o) if o else (p,)
        if o:
            return "osp", (o, s) if s else (o,)
        if s:
            return "spo", (s,)
        return "spo", ()

    def scan(self, s: int, p: int, o: int) -> Iterator[tuple[int, int, int]]:
        ordering, prefix = self._plan(s, p, o)
        handle = self.files[ordering]
        lo, hi = handle.prefix_range(prefix)
        restore = _ORDERINGS[ordering][1]
        for record in handle.scan(lo, hi):
            yield restore(record)

    def range_count(self, s: int, p: int, o: int) -> int:
        ordering, prefix = self._plan(s, p, o)
        lo, hi = self.files[ordering].prefix_range(prefix)
        return hi - lo

    def contains(self, s: int, p: int, o: int) -> bool:
        handle = self.files["spo"]
        index = handle.lower_bound((s, p, o))
        return index < handle.count and handle.record(index) == (s, p, o)


def _write_sorted_run(path: Path, records: Iterable[tuple[int, int, int]]) -> None:
    with open(path, "wb") as sink:
        pack = _RECORD.pack
        for record in records:
            sink.write(pack(*record))


def _atomic_json(path: Path, payload: dict) -> None:
    scratch = path.with_suffix(path.suffix + ".tmp")
    scratch.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    os.replace(scratch, path)


def _bump(counts: dict[int, int], key: int, delta: int) -> None:
    updated = counts.get(key, 0) + delta
    if updated > 0:
        counts[key] = updated
    else:
        counts.pop(key, None)


# --------------------------------------------------------------------------- #
# SegmentStore
# --------------------------------------------------------------------------- #
class SegmentStore(Store):
    """Disk-backed store: immutable sorted index segments plus a write buffer.

    Layout of a store directory::

        MANIFEST.json     commit point: format version + live segment names
        terms.jsonl       append-only term dictionary log (id = line order)
        seg-N.spo/.pos/.osp   sorted 24-byte id-record runs (one per ordering)
        seg-N.meta.json   triple count + exact per-id role statistics
        tombstones.bin    deletes against segment-resident triples

    Writes land in an in-memory :class:`_IdIndex` buffer and become
    durable when the buffer reaches ``buffer_limit`` (or on
    :meth:`flush`/:meth:`close`), each flush producing one new immutable
    segment.  Deletes of segment-resident triples are tombstones applied
    at scan time and physically dropped by :meth:`compact`, which merges
    every segment into one.  Statistics are summed from the per-segment
    metadata on open — a cold open never scans triple data.

    Mutations are serialised by an internal lock; concurrent *reads* are
    safe against each other (positional I/O, no shared offsets), matching
    the read-mostly usage of :class:`repro.federation.LocalSparqlEndpoint`.
    """

    DEFAULT_BUFFER_LIMIT = 50_000

    def __init__(self, directory: str | os.PathLike,
                 buffer_limit: int = DEFAULT_BUFFER_LIMIT) -> None:
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        self.directory = Path(directory)
        self.buffer_limit = buffer_limit
        self.io = _IoCounters()
        self._lock = threading.RLock()
        self._closed = False
        self._buffer = _IdIndex()
        self._tombstones: set[tuple[int, int, int]] = set()
        self._tombstones_dirty = False
        self._segments: list[_Segment] = []
        self._segment_count = 0
        self._next_segment = 1
        self._stats_ids: dict[str, dict[int, int]] = {
            "subjects": {}, "predicates": {}, "objects": {}, "classes": {},
        }
        self._stats_cache: tuple[int, GraphStatistics] | None = None
        self._version = 0

        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / _MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if manifest.get("format") != _FORMAT_VERSION:
                raise StoreError(
                    f"{manifest_path}: unsupported store format "
                    f"{manifest.get('format')!r} (expected {_FORMAT_VERSION})"
                )
        else:
            manifest = {"format": _FORMAT_VERSION, "segments": [], "next_segment": 1}
            _atomic_json(manifest_path, manifest)

        self._dictionary = self._open_dictionary()
        self._rdf_type_id = self._dictionary.intern(RDF.type)
        self._next_segment = int(manifest.get("next_segment", 1))
        for name in manifest["segments"]:
            segment = _Segment(self.directory, name, self.io)
            self._segments.append(segment)
            self._segment_count += segment.count
            for role, counts in segment.stats_ids.items():
                merged = self._stats_ids[role]
                for key, value in counts.items():
                    merged[key] = merged.get(key, 0) + value
        self._load_tombstones()

    # ------------------------------------------------------------------ #
    # Opening helpers
    # ------------------------------------------------------------------ #
    def _open_dictionary(self) -> _PersistentTermDictionary:
        path = self.directory / _TERMS_LOG
        existing: list[str] = []
        if path.exists():
            existing = path.read_text(encoding="utf-8").splitlines()
        sink = open(path, "a", encoding="utf-8")
        dictionary = _PersistentTermDictionary(sink)
        for number, line in enumerate(existing, 1):
            if not line.strip():
                continue
            try:
                term = _decode_term(line)
            except (json.JSONDecodeError, ValueError, IndexError) as exc:
                sink.close()
                raise StoreError(f"{path}:{number}: corrupt dictionary entry: {exc}") from exc
            # Rebuild the table directly: replay must not re-append.
            dictionary._ids[term] = len(dictionary._terms)
            dictionary._terms.append(term)
        return dictionary

    def _load_tombstones(self) -> None:
        path = self.directory / _TOMBSTONES
        if not path.exists():
            return
        data = path.read_bytes()
        for record in _RECORD.iter_unpack(data):
            triple = (record[0], record[1], record[2])
            self._tombstones.add(triple)
            self._record_stats(*triple, delta=-1)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def _record_stats(self, s: int, p: int, o: int, delta: int) -> None:
        _bump(self._stats_ids["subjects"], s, delta)
        _bump(self._stats_ids["predicates"], p, delta)
        _bump(self._stats_ids["objects"], o, delta)
        if p == self._rdf_type_id:
            _bump(self._stats_ids["classes"], o, delta)

    @property
    def stats(self) -> GraphStatistics:
        """Term-keyed statistics materialised from the id-keyed counters.

        The materialisation is cached per :attr:`version`, so read-only
        workloads (the planner, voiD publishing) pay it once.
        """
        cached = self._stats_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        terms = self._dictionary.terms
        stats = GraphStatistics()
        for role, counts in (
            ("subject_counts", self._stats_ids["subjects"]),
            ("predicate_counts", self._stats_ids["predicates"]),
            ("object_counts", self._stats_ids["objects"]),
            ("class_counts", self._stats_ids["classes"]),
        ):
            getattr(stats, role).update(
                (terms[key], value) for key, value in counts.items()
            )
        self._stats_cache = (self._version, stats)
        return stats

    # ------------------------------------------------------------------ #
    # Store contract
    # ------------------------------------------------------------------ #
    @property
    def dictionary(self) -> TermDictionary:
        return self._dictionary

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return self._segment_count - len(self._tombstones) + self._buffer.size

    @property
    def segment_names(self) -> list[str]:
        return [segment.name for segment in self._segments]

    @property
    def buffered(self) -> int:
        """Triples sitting in the write buffer (not yet durable)."""
        return self._buffer.size

    @property
    def tombstoned(self) -> int:
        """Deletes awaiting physical removal by :meth:`compact`."""
        return len(self._tombstones)

    def _in_segments(self, s: int, p: int, o: int) -> bool:
        return any(segment.contains(s, p, o) for segment in self._segments)

    def add(self, s: Term, p: Term, o: Term) -> bool:
        with self._lock:
            self._check_open()
            intern = self._dictionary.intern
            si, pi, oi = intern(s), intern(p), intern(o)
            if self._buffer.contains(si, pi, oi):
                return False
            if self._in_segments(si, pi, oi):
                if (si, pi, oi) not in self._tombstones:
                    return False
                # Re-assertion of a tombstoned triple: the segment copy
                # becomes visible again, no buffer entry needed.
                self._tombstones.discard((si, pi, oi))
                self._tombstones_dirty = True
            else:
                self._buffer.add(si, pi, oi)
            self._record_stats(si, pi, oi, +1)
            self._version += 1
            if self._buffer.size >= self.buffer_limit:
                self.flush()
        return True

    def discard(self, s: Term, p: Term, o: Term) -> bool:
        with self._lock:
            self._check_open()
            ids = self._pattern_ids(s, p, o)
            if ids is None:
                return False
            if self._buffer.discard(*ids):
                pass
            elif self._in_segments(*ids) and ids not in self._tombstones:
                self._tombstones.add(ids)
                self._tombstones_dirty = True
            else:
                return False
            self._record_stats(*ids, delta=-1)
            self._version += 1
        return True

    def clear(self) -> None:
        with self._lock:
            self._check_open()
            self._buffer.clear()
            self._tombstones.clear()
            self._tombstones_dirty = False
            for segment in self._segments:
                segment.close()
                self._delete_segment_files(segment.name)
            self._segments.clear()
            self._segment_count = 0
            for counts in self._stats_ids.values():
                counts.clear()
            self._version += 1
            self._write_tombstones()
            self._write_manifest()

    def triples_ids(
        self, s: int = UNBOUND_ID, p: int = UNBOUND_ID, o: int = UNBOUND_ID
    ) -> Iterator[tuple[int, int, int]]:
        yield from self._buffer.scan(s, p, o)
        tombstones = self._tombstones
        for segment in self._segments:
            if tombstones:
                for triple in segment.scan(s, p, o):
                    if triple not in tombstones:
                        yield triple
            else:
                yield from segment.scan(s, p, o)

    def cardinality(
        self, s: Term | None = None, p: Term | None = None, o: Term | None = None
    ) -> int:
        bound = sum(term is not None for term in (s, p, o))
        if bound == 0:
            return len(self)
        ids = self._pattern_ids(s, p, o)
        if ids is None:
            return 0
        if bound == 1:
            role = "subjects" if s is not None else (
                "predicates" if p is not None else "objects")
            key = ids[0] if s is not None else (ids[1] if p is not None else ids[2])
            return self._stats_ids[role].get(key, 0)
        total = self._buffer.count(*ids)
        total += sum(segment.range_count(*ids) for segment in self._segments)
        si, pi, oi = ids
        for ts, tp, to in self._tombstones:
            if (not si or ts == si) and (not pi or tp == pi) and (not oi or to == oi):
                total -= 1
        return total

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Persist the write buffer as a new segment and sync metadata."""
        with self._lock:
            self._check_open()
            self._dictionary._sink.flush()
            if self._tombstones_dirty:
                self._write_tombstones()
            if not self._buffer.size:
                return
            name = f"seg-{self._next_segment:06d}"
            self._next_segment += 1
            self._write_segment(name, sorted(self._buffer.scan(0, 0, 0)))
            self._buffer = _IdIndex()
            segment = _Segment(self.directory, name, self.io)
            self._segments.append(segment)
            self._segment_count += segment.count
            self._write_manifest()

    def _write_segment(self, name: str, spo_sorted: list[tuple[int, int, int]]) -> None:
        """Write one segment (three runs + metadata) from sorted triples."""
        stats: dict[str, dict[int, int]] = {
            "subjects": {}, "predicates": {}, "objects": {}, "classes": {},
        }
        for s, p, o in spo_sorted:
            _bump(stats["subjects"], s, +1)
            _bump(stats["predicates"], p, +1)
            _bump(stats["objects"], o, +1)
            if p == self._rdf_type_id:
                _bump(stats["classes"], o, +1)
        _write_sorted_run(self.directory / f"{name}.spo", spo_sorted)
        for ordering in ("pos", "osp"):
            permute = _ORDERINGS[ordering][0]
            _write_sorted_run(
                self.directory / f"{name}.{ordering}",
                sorted(permute(s, p, o) for s, p, o in spo_sorted),
            )
        _atomic_json(self.directory / f"{name}.meta.json", {
            "triples": len(spo_sorted),
            "stats": {
                role: {str(key): value for key, value in counts.items()}
                for role, counts in stats.items()
            },
        })

    def _write_tombstones(self) -> None:
        path = self.directory / _TOMBSTONES
        scratch = path.with_suffix(".tmp")
        with open(scratch, "wb") as sink:
            for record in sorted(self._tombstones):
                sink.write(_RECORD.pack(*record))
        os.replace(scratch, path)
        self._tombstones_dirty = False

    def _write_manifest(self) -> None:
        _atomic_json(self.directory / _MANIFEST, {
            "format": _FORMAT_VERSION,
            "segments": [segment.name for segment in self._segments],
            "next_segment": self._next_segment,
        })

    def _delete_segment_files(self, name: str) -> None:
        for suffix in ("spo", "pos", "osp", "meta.json"):
            (self.directory / f"{name}.{suffix}").unlink(missing_ok=True)

    def compact(self) -> bool:
        """Merge every segment into one, physically dropping tombstones.

        Runs of each ordering are merged with :func:`heapq.merge`, so
        compaction streams — it never holds the full dataset in memory.
        Returns True when anything was rewritten.
        """
        with self._lock:
            self._check_open()
            self.flush()
            if len(self._segments) <= 1 and not self._tombstones:
                return False
            old_segments = list(self._segments)
            name = f"seg-{self._next_segment:06d}"
            self._next_segment += 1
            survivors = 0
            for ordering in ("spo", "pos", "osp"):
                restore = _ORDERINGS[ordering][1]
                runs = [
                    segment.files[ordering].scan(0, segment.files[ordering].count)
                    for segment in old_segments
                ]
                merged = (
                    record for record in heapq.merge(*runs)
                    if restore(record) not in self._tombstones
                )
                path = self.directory / f"{name}.{ordering}"
                if ordering == "spo":
                    count = 0
                    with open(path, "wb") as sink:
                        for record in merged:
                            sink.write(_RECORD.pack(*record))
                            count += 1
                    survivors = count
                else:
                    _write_sorted_run(path, merged)
            # Post-flush the store's live id-statistics describe exactly
            # the surviving segment triples, so they become its metadata.
            _atomic_json(self.directory / f"{name}.meta.json", {
                "triples": survivors,
                "stats": {
                    role: {str(key): value for key, value in counts.items()}
                    for role, counts in self._stats_ids.items()
                },
            })
            for segment in old_segments:
                segment.close()
            self._segments = [_Segment(self.directory, name, self.io)]
            self._segment_count = survivors
            self._tombstones.clear()
            self._write_tombstones()
            self._write_manifest()
            for segment in old_segments:
                self._delete_segment_files(segment.name)
            return True

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._closed = True
            self._dictionary._sink.close()
            for segment in self._segments:
                segment.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.directory} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SegmentStore {self.directory} {len(self)} triples, "
                f"{len(self._segments)} segments, {self._buffer.size} buffered>")


# --------------------------------------------------------------------------- #
# Factories
# --------------------------------------------------------------------------- #
def open_store(path: str | os.PathLike | None = None, **options) -> Store:
    """A :class:`SegmentStore` at ``path``, or a :class:`MemoryStore` for None."""
    if path is None:
        return MemoryStore()
    return SegmentStore(path, **options)


def open_graph(path: str | os.PathLike | None = None, **options):
    """Open (or create) a graph: in-memory for ``None``, disk-backed for a path.

    The disk-backed form is rebuild-free: a cold open reads only the term
    dictionary and per-segment metadata, then serves queries straight from
    the on-disk index segments.  ``options`` are forwarded to
    :class:`SegmentStore` (e.g. ``buffer_limit``).
    """
    from .graph import Graph

    return Graph(store=open_store(path, **options))
