"""RDF datasets (collections of named graphs).

The mediator of Section 3.4 keeps two knowledge bases (the alignment KB and
the voiD KB) and the federation layer manages one graph per remote dataset.
:class:`Dataset` gives those components a common container: a default graph
plus any number of named graphs, addressable by URI.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .graph import Graph
from .terms import URIRef
from .triple import Quad, Triple

__all__ = ["Dataset"]


class Dataset:
    """A default graph plus a set of named graphs."""

    def __init__(self) -> None:
        self._default = Graph()
        self._named: dict[URIRef, Graph] = {}

    # ------------------------------------------------------------------ #
    # Graph management
    # ------------------------------------------------------------------ #
    @property
    def default_graph(self) -> Graph:
        """The unnamed default graph."""
        return self._default

    def graph(self, name: URIRef | None = None, create: bool = True) -> Graph:
        """Return the graph named ``name`` (the default graph when ``None``).

        When ``create`` is true a missing named graph is created on demand;
        otherwise :class:`KeyError` is raised.
        """
        if name is None:
            return self._default
        if name not in self._named:
            if not create:
                raise KeyError(f"no graph named {name}")
            self._named[name] = Graph(identifier=name)
        return self._named[name]

    def remove_graph(self, name: URIRef) -> None:
        """Drop a named graph entirely."""
        self._named.pop(name, None)

    def graph_names(self) -> list[URIRef]:
        """URIs of all named graphs, sorted for determinism."""
        return sorted(self._named, key=str)

    def graphs(self) -> Iterator[Graph]:
        """Iterate over the default graph followed by the named graphs."""
        yield self._default
        for name in self.graph_names():
            yield self._named[name]

    def __contains__(self, name: URIRef) -> bool:
        return name in self._named

    def __len__(self) -> int:
        """Total number of quads across all graphs."""
        return sum(len(graph) for graph in self.graphs())

    # ------------------------------------------------------------------ #
    # Quad-level operations
    # ------------------------------------------------------------------ #
    def add_quad(self, quad: Quad) -> Dataset:
        """Insert a quad into the appropriate graph."""
        self.graph(quad.graph_name).add(quad.triple)
        return self

    def add(self, triple: Triple, graph_name: URIRef | None = None) -> Dataset:
        """Insert a triple into the named (or default) graph."""
        self.graph(graph_name).add(triple)
        return self

    def quads(
        self,
        subject=None,
        predicate=None,
        obj=None,
        graph_name: URIRef | None = None,
    ) -> Iterator[Quad]:
        """Yield quads matching a pattern, optionally restricted to a graph."""
        if graph_name is not None:
            for triple in self.graph(graph_name, create=False).triples(subject, predicate, obj):
                yield Quad(triple, graph_name)
            return
        for triple in self._default.triples(subject, predicate, obj):
            yield Quad(triple, None)
        for name in self.graph_names():
            for triple in self._named[name].triples(subject, predicate, obj):
                yield Quad(triple, name)

    def union_graph(self) -> Graph:
        """Merge the default and every named graph into one new graph."""
        merged = Graph()
        for graph in self.graphs():
            merged.add_all(graph)
        return merged

    def load(self, triples: Iterable[Triple], graph_name: URIRef | None = None) -> Dataset:
        """Bulk-load triples into a graph."""
        self.graph(graph_name).add_all(triples)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Dataset default={len(self._default)} named_graphs={len(self._named)}>"
