"""RDF data model substrate.

This package provides the RDF data model the rest of the library is built
on: terms, triples, namespaces, indexed graphs, named-graph datasets,
statement reification, ``rdf:List`` collections and blank-node-aware graph
comparison.  It substitutes for the Jena model API used by the original
system (see DESIGN.md, substitution table).
"""

from .terms import (
    BNode,
    Literal,
    Term,
    URIRef,
    Variable,
    XSD,
    fresh_bnode,
    is_ground,
    is_variable_like,
    reset_bnode_counter,
)
from .triple import Quad, Triple
from .namespace import (
    AKT,
    ALIGN_FN,
    DBPEDIA_RES,
    DBPO,
    DC,
    DEFAULT_PREFIXES,
    FOAF,
    KISTI,
    KISTI_ID,
    MAP,
    Namespace,
    NamespaceManager,
    OWL,
    RDF,
    RDFS,
    RKB_ID,
    SKOS,
    VOID,
    XSD_NS,
)
from .store import (
    GraphStatistics,
    MemoryStore,
    SegmentStore,
    Store,
    StoreError,
    TermDictionary,
    UNBOUND_ID,
    open_graph,
    open_store,
)
from .graph import Graph, GraphView, ReadOnlyGraphView
from .dataset import Dataset
from .reification import ReificationError, dereify, dereify_all, is_statement_node, reify
from .collections import CollectionError, build_list, is_list_node, read_list
from .isomorphism import canonical_hash, isomorphic

__all__ = [
    # terms
    "Term", "URIRef", "Literal", "BNode", "Variable", "XSD",
    "fresh_bnode", "reset_bnode_counter", "is_ground", "is_variable_like",
    # triples
    "Triple", "Quad",
    # namespaces
    "Namespace", "NamespaceManager", "DEFAULT_PREFIXES",
    "RDF", "RDFS", "OWL", "XSD_NS", "FOAF", "DC", "VOID", "SKOS",
    "AKT", "KISTI", "DBPO", "MAP", "ALIGN_FN", "RKB_ID", "KISTI_ID", "DBPEDIA_RES",
    # graph/dataset
    "Graph", "GraphView", "GraphStatistics", "ReadOnlyGraphView", "Dataset",
    "TermDictionary", "UNBOUND_ID",
    # storage backends
    "Store", "MemoryStore", "SegmentStore", "StoreError",
    "open_store", "open_graph",
    # reification / collections
    "reify", "dereify", "dereify_all", "is_statement_node", "ReificationError",
    "build_list", "read_list", "is_list_node", "CollectionError",
    # isomorphism
    "isomorphic", "canonical_hash",
]
