"""RDF statement reification helpers.

Section 3.2.2 of the paper encodes alignments *in RDF* and, because an RDF
statement has no URI of its own, uses the reification mechanism: a node of
type ``rdf:Statement`` with ``rdf:subject`` / ``rdf:predicate`` /
``rdf:object`` arcs describes the triple.  These helpers turn triples into
reified descriptions and back; the alignment RDF reader/writer in
``repro.alignment.rdf_io`` builds on them.
"""

from __future__ import annotations


from .graph import Graph
from .namespace import RDF
from .terms import Term, URIRef, fresh_bnode
from .triple import Triple

__all__ = ["reify", "dereify", "dereify_all", "is_statement_node", "ReificationError"]


class ReificationError(ValueError):
    """Raised when a reified statement description is malformed."""


def reify(graph: Graph, triple: Triple, statement_node: Term | None = None) -> Term:
    """Describe ``triple`` in ``graph`` using reification.

    Returns the node standing for the statement (a fresh blank node unless
    ``statement_node`` is supplied).  Note that, following the paper, the
    reified triple may be a *pattern*: blank nodes are used in the subject
    and object positions of alignment patterns, so no groundness check is
    made on the described triple — only the description triples themselves
    must be assertable, which is guaranteed because patterns are encoded
    with blank nodes rather than SPARQL variables.
    """
    node = statement_node if statement_node is not None else fresh_bnode("stmt")
    graph.add(Triple(node, RDF.type, RDF.Statement))
    graph.add(Triple(node, RDF.subject, triple.subject))
    graph.add(Triple(node, RDF.predicate, triple.predicate))
    graph.add(Triple(node, RDF.object, triple.object))
    return node


def is_statement_node(graph: Graph, node: Term) -> bool:
    """True when ``node`` is typed ``rdf:Statement`` in ``graph``."""
    return Triple(node, RDF.type, RDF.Statement) in graph


def dereify(graph: Graph, node: Term) -> Triple:
    """Reconstruct the triple described by the reification node ``node``.

    Raises :class:`ReificationError` when any of the three components is
    missing or ambiguous.
    """
    subject = _single_value(graph, node, RDF.subject)
    predicate = _single_value(graph, node, RDF.predicate)
    obj = _single_value(graph, node, RDF.object)
    try:
        return Triple(subject, predicate, obj)
    except TypeError as exc:
        raise ReificationError(f"reified statement {node} is not a valid triple: {exc}") from exc


def dereify_all(graph: Graph) -> list[tuple[Term, Triple]]:
    """Return ``(statement_node, triple)`` for every reified statement."""
    results: list[tuple[Term, Triple]] = []
    for node in sorted(graph.subjects(RDF.type, RDF.Statement), key=lambda t: t.sort_key()):
        results.append((node, dereify(graph, node)))
    return results


def _single_value(graph: Graph, node: Term, predicate: URIRef) -> Term:
    values = list(graph.objects(node, predicate))
    if not values:
        raise ReificationError(f"reified statement {node} lacks {predicate}")
    if len(values) > 1:
        raise ReificationError(f"reified statement {node} has multiple {predicate} values")
    return values[0]
