"""Triples and triple patterns.

The paper works with the three-place notation ``Triple(s, p, o)`` over the
domain ``I x I x (I ∪ L)`` extended with variables/blank nodes for
patterns.  :class:`Triple` covers both ground triples (asserted data) and
triple patterns (BGP members, alignment LHS/RHS atoms); helper predicates
distinguish the two.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from .terms import BNode, Literal, Term, URIRef, Variable, is_ground, is_variable_like

__all__ = ["Triple", "Quad", "SubjectType", "PredicateType", "ObjectType"]

SubjectType = URIRef | BNode | Variable
PredicateType = URIRef | Variable
ObjectType = URIRef | BNode | Literal | Variable


class Triple:
    """An RDF triple or triple pattern ``<subject, predicate, object>``.

    Instances are immutable and hashable so they can populate sets and act
    as dictionary keys in graph indexes.
    """

    __slots__ = ("_subject", "_predicate", "_object")

    def __init__(self, subject: Term, predicate: Term, obj: Term) -> None:
        self._validate(subject, predicate, obj)
        self._subject = subject
        self._predicate = predicate
        self._object = obj

    @staticmethod
    def _validate(subject: Term, predicate: Term, obj: Term) -> None:
        if not isinstance(subject, (URIRef, BNode, Variable)):
            raise TypeError(f"invalid triple subject: {subject!r}")
        if not isinstance(predicate, (URIRef, Variable)):
            raise TypeError(f"invalid triple predicate: {predicate!r}")
        if not isinstance(obj, (URIRef, BNode, Literal, Variable)):
            raise TypeError(f"invalid triple object: {obj!r}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def subject(self) -> Term:
        return self._subject

    @property
    def predicate(self) -> Term:
        return self._predicate

    @property
    def object(self) -> Term:
        return self._object

    def as_tuple(self) -> tuple[Term, Term, Term]:
        """Return the triple as a plain ``(s, p, o)`` tuple."""
        return (self._subject, self._predicate, self._object)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.as_tuple())

    def __getitem__(self, index: int) -> Term:
        return self.as_tuple()[index]

    def __len__(self) -> int:
        return 3

    # ------------------------------------------------------------------ #
    # Pattern helpers
    # ------------------------------------------------------------------ #
    def is_ground(self) -> bool:
        """True when every position holds a URI or literal."""
        return all(is_ground(term) for term in self)

    def is_pattern(self) -> bool:
        """True when at least one position holds a variable or blank node."""
        return not self.is_ground()

    def variables(self) -> set[Variable]:
        """The set of SPARQL variables occurring in the triple."""
        return {term for term in self if isinstance(term, Variable)}

    def bnodes(self) -> set[BNode]:
        """The set of blank nodes occurring in the triple."""
        return {term for term in self if isinstance(term, BNode)}

    def variable_like_terms(self) -> set[Term]:
        """Variables and blank nodes occurring in the triple."""
        return {term for term in self if is_variable_like(term)}

    def map_terms(self, func) -> Triple:
        """Return a new triple with ``func`` applied to every position."""
        return Triple(func(self._subject), func(self._predicate), func(self._object))

    def bnodes_as_variables(self) -> Triple:
        """Return the triple with blank nodes replaced by same-named variables.

        This implements the paper's reading of alignment patterns where
        ``_:p1`` is interpreted as the variable ``?p1``.
        """

        def convert(term: Term) -> Term:
            if isinstance(term, BNode):
                return term.to_variable()
            return term

        return self.map_terms(convert)

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def n3(self) -> str:
        """N-Triples style serialisation (without the trailing dot)."""
        return f"{self._subject.n3()} {self._predicate.n3()} {self._object.n3()}"

    def __str__(self) -> str:
        return self.n3() + " ."

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Triple({self._subject!r}, {self._predicate!r}, {self._object!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Triple) and self.as_tuple() == other.as_tuple()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("Triple",) + self.as_tuple())

    def __lt__(self, other: Triple) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return tuple(t.sort_key() for t in self) < tuple(t.sort_key() for t in other)


class Quad:
    """A triple asserted inside a named graph."""

    __slots__ = ("_triple", "_graph_name")

    def __init__(self, triple: Triple, graph_name: URIRef | None = None) -> None:
        if not isinstance(triple, Triple):
            raise TypeError("Quad requires a Triple")
        if graph_name is not None and not isinstance(graph_name, URIRef):
            raise TypeError("graph name must be a URIRef or None")
        self._triple = triple
        self._graph_name = graph_name

    @property
    def triple(self) -> Triple:
        return self._triple

    @property
    def graph_name(self) -> URIRef | None:
        return self._graph_name

    def as_tuple(self) -> tuple[Term, Term, Term, URIRef | None]:
        return self._triple.as_tuple() + (self._graph_name,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Quad) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(("Quad",) + self.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Quad({self._triple!r}, {self._graph_name!r})"


def triples_from_tuples(
    tuples: Sequence[tuple[Term, Term, Term]]
) -> list[Triple]:
    """Build :class:`Triple` objects from plain ``(s, p, o)`` tuples."""
    return [Triple(s, p, o) for (s, p, o) in tuples]
