"""Recursive-descent parser for Turtle documents.

Supports the Turtle features used throughout the project and in the
paper's listings:

* ``@prefix`` / ``@base`` directives (and their SPARQL-style spellings),
* subject / predicate-object list / object list abbreviations (``;`` ``,``),
* the ``a`` keyword for ``rdf:type``,
* blank node labels and anonymous blank node property lists ``[...]``,
* collections ``( ... )`` encoded as ``rdf:List``,
* string literals (short and long forms) with language tags and datatypes,
* numeric and boolean literals.
"""

from __future__ import annotations


from ..rdf import (
    BNode,
    Graph,
    Literal,
    NamespaceManager,
    RDF,
    Term,
    Triple,
    URIRef,
    XSD,
    fresh_bnode,
)
from .lexer import Token, tokenize
from .ntriples import unescape

__all__ = ["TurtleParser", "TurtleParseError", "parse_turtle"]


class TurtleParseError(ValueError):
    """Raised when a Turtle document is syntactically invalid."""

    def __init__(self, message: str, token: Token | None = None) -> None:
        location = f" (line {token.line}, column {token.column})" if token else ""
        super().__init__(message + location)
        self.token = token


class TurtleParser:
    """Parse a Turtle document into a :class:`Graph`.

    The parser is re-usable: each call to :meth:`parse` starts from a clean
    namespace environment (default prefixes are *not* pre-installed so that
    documents must declare what they use, exactly as the original Turtle
    listings do; pass ``namespace_manager`` to seed bindings).
    """

    def __init__(self, namespace_manager: NamespaceManager | None = None) -> None:
        self._seed_manager = namespace_manager

    def parse(self, text: str, graph: Graph | None = None) -> Graph:
        """Parse ``text`` and return the populated graph."""
        tokens = tokenize(text)
        state = _ParserState(tokens, graph, self._seed_manager)
        state.run()
        return state.graph


class _ParserState:
    """Internal cursor over the token stream."""

    def __init__(
        self,
        tokens: list[Token],
        graph: Graph | None,
        seed_manager: NamespaceManager | None,
    ) -> None:
        self._tokens = tokens
        self._index = 0
        manager = seed_manager.copy() if seed_manager else NamespaceManager(install_defaults=False)
        self.graph = graph if graph is not None else Graph(namespace_manager=manager)
        if graph is not None and seed_manager is not None:
            self.graph.namespace_manager = manager
        self._base: str | None = None

    # ------------------------------------------------------------------ #
    # Token stream helpers
    # ------------------------------------------------------------------ #
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise TurtleParseError(f"expected {kind}, found {token.kind} {token.value!r}", token)
        return token

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        while not self._at("EOF"):
            if self._at("PREFIX_DIRECTIVE"):
                self._prefix_directive()
            elif self._at("BASE_DIRECTIVE"):
                self._base_directive()
            else:
                self._triples_block()

    def _prefix_directive(self) -> None:
        directive = self._next()
        pname = self._expect("PNAME")
        if not pname.value.endswith(":"):
            raise TurtleParseError("prefix declaration must end with ':'", pname)
        prefix = pname.value[:-1]
        iri = self._expect("IRIREF")
        self.graph.namespace_manager.bind(prefix, self._resolve_iri(iri.value))
        if directive.value.startswith("@"):
            self._expect("DOT")
        elif self._at("DOT"):  # tolerate a stray dot after SPARQL-style PREFIX
            self._next()

    def _base_directive(self) -> None:
        directive = self._next()
        iri = self._expect("IRIREF")
        self._base = iri.value[1:-1]
        if directive.value.startswith("@"):
            self._expect("DOT")
        elif self._at("DOT"):
            self._next()

    def _triples_block(self) -> None:
        if self._at("LBRACKET"):
            subject = self._blank_node_property_list()
            # A bare "[...] ." statement is legal; predicates are optional.
            if not self._at("DOT"):
                self._predicate_object_list(subject)
        else:
            subject = self._term(position="subject")
            self._predicate_object_list(subject)
        self._expect("DOT")

    def _predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._verb()
            self._object_list(subject, predicate)
            if self._at("SEMICOLON"):
                self._next()
                # Trailing semicolons before '.' or ']' are allowed.
                while self._at("SEMICOLON"):
                    self._next()
                if self._at("DOT") or self._at("RBRACKET") or self._at("EOF"):
                    return
                continue
            return

    def _object_list(self, subject: Term, predicate: Term) -> None:
        while True:
            obj = self._term(position="object")
            self.graph.add(Triple(subject, predicate, obj))
            if self._at("COMMA"):
                self._next()
                continue
            return

    def _verb(self) -> Term:
        if self._at("A"):
            self._next()
            return RDF.type
        term = self._term(position="predicate")
        if not isinstance(term, URIRef):
            raise TurtleParseError(f"predicate must be an IRI, found {term!r}")
        return term

    # ------------------------------------------------------------------ #
    # Terms
    # ------------------------------------------------------------------ #
    def _term(self, position: str) -> Term:
        token = self._peek()
        if token.kind == "IRIREF":
            self._next()
            return self._resolve_iri(token.value)
        if token.kind == "PNAME":
            self._next()
            return self._expand_pname(token)
        if token.kind == "BLANK_NODE":
            self._next()
            return BNode(token.value)
        if token.kind == "LBRACKET":
            return self._blank_node_property_list()
        if token.kind == "LPAREN":
            return self._collection()
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE", "BOOLEAN"):
            if position != "object":
                raise TurtleParseError(f"literal not allowed in {position} position", token)
            return self._literal()
        if token.kind == "A" and position == "object":
            # "a" is only a keyword in the predicate position.
            self._next()
            raise TurtleParseError("'a' keyword cannot be used as an object", token)
        raise TurtleParseError(f"unexpected token {token.kind} {token.value!r}", token)

    def _resolve_iri(self, raw: str) -> URIRef:
        value = unescape(raw[1:-1])
        if self._base is not None:
            return URIRef(value, base=self._base)
        return URIRef(value)

    def _expand_pname(self, token: Token) -> URIRef:
        value = token.value
        prefix, _, local = value.partition(":")
        namespace = self.graph.namespace_manager.namespace(prefix)
        if namespace is None:
            raise TurtleParseError(f"undeclared prefix {prefix!r}", token)
        local = local.replace("%20", " ") if False else local  # keep percent-encoding
        return URIRef(namespace + local)

    def _blank_node_property_list(self) -> Term:
        self._expect("LBRACKET")
        node = fresh_bnode("anon")
        if not self._at("RBRACKET"):
            self._predicate_object_list(node)
        self._expect("RBRACKET")
        return node

    def _collection(self) -> Term:
        self._expect("LPAREN")
        items: list[Term] = []
        while not self._at("RPAREN"):
            items.append(self._term(position="object"))
        self._expect("RPAREN")
        if not items:
            return RDF.nil
        head: Term | None = None
        previous: Term | None = None
        for item in items:
            node = fresh_bnode("list")
            self.graph.add(Triple(node, RDF.first, item))
            if previous is not None:
                self.graph.add(Triple(previous, RDF.rest, node))
            if head is None:
                head = node
            previous = node
        assert previous is not None and head is not None
        self.graph.add(Triple(previous, RDF.rest, RDF.nil))
        return head

    def _literal(self) -> Literal:
        token = self._next()
        if token.kind == "STRING":
            lexical = self._strip_quotes(token.value)
            if self._at("LANGTAG"):
                lang = self._next().value[1:]
                return Literal(lexical, lang=lang)
            if self._at("DATATYPE_MARKER"):
                self._next()
                dt_token = self._next()
                if dt_token.kind == "IRIREF":
                    datatype = self._resolve_iri(dt_token.value)
                elif dt_token.kind == "PNAME":
                    datatype = self._expand_pname(dt_token)
                else:
                    raise TurtleParseError("datatype must be an IRI", dt_token)
                return Literal(lexical, datatype=datatype)
            return Literal(lexical)
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD.double)
        if token.kind == "BOOLEAN":
            return Literal(token.value, datatype=XSD.boolean)
        raise TurtleParseError(f"not a literal token: {token.kind}", token)

    @staticmethod
    def _strip_quotes(raw: str) -> str:
        if raw.startswith('"""') or raw.startswith("'''"):
            return unescape(raw[3:-3])
        return unescape(raw[1:-1])


def parse_turtle(text: str, namespace_manager: NamespaceManager | None = None) -> Graph:
    """Convenience wrapper: parse Turtle text into a new graph."""
    return TurtleParser(namespace_manager).parse(text)
