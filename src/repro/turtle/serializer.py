"""Turtle serialiser.

Produces readable Turtle with prefix declarations, subject grouping and
predicate/object list abbreviations.  Output is deterministic (subjects,
predicates and objects are sorted) so that serialisations can be compared
textually in tests and experiment logs.
"""

from __future__ import annotations

from collections import defaultdict


from ..rdf import BNode, Graph, Literal, NamespaceManager, RDF, Term, URIRef
from .ntriples import escape

__all__ = ["TurtleSerializer", "serialize_turtle"]


class TurtleSerializer:
    """Serialise a :class:`Graph` to Turtle text."""

    def __init__(self, graph: Graph, namespace_manager: NamespaceManager | None = None) -> None:
        self._graph = graph
        self._nsm = namespace_manager or graph.namespace_manager

    def serialize(self) -> str:
        used_prefixes = self._collect_used_prefixes()
        lines: list[str] = []
        for prefix in sorted(used_prefixes):
            namespace = self._nsm.namespace(prefix)
            lines.append(f"@prefix {prefix}: <{namespace}> .")
        if lines:
            lines.append("")

        by_subject: dict[Term, list] = defaultdict(list)
        for triple in self._graph:
            by_subject[triple.subject].append(triple)

        for subject in sorted(by_subject, key=lambda t: t.sort_key()):
            lines.extend(self._subject_block(subject, by_subject[subject]))
            lines.append("")
        return "\n".join(lines).rstrip("\n") + "\n"

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _collect_used_prefixes(self) -> set[str]:
        used: set[str] = set()
        for triple in self._graph:
            for term in triple:
                if isinstance(term, URIRef):
                    compact = self._nsm.compact(term)
                    if compact:
                        used.add(compact.split(":", 1)[0])
                elif isinstance(term, Literal) and term.datatype is not None:
                    compact = self._nsm.compact(term.datatype)
                    if compact:
                        used.add(compact.split(":", 1)[0])
        return used

    def _subject_block(self, subject: Term, triples: list) -> list[str]:
        by_predicate: dict[Term, list[Term]] = defaultdict(list)
        for triple in triples:
            by_predicate[triple.predicate].append(triple.object)

        lines = [self._term(subject)]
        predicates = sorted(by_predicate, key=self._predicate_sort_key)
        for index, predicate in enumerate(predicates):
            objects = sorted(by_predicate[predicate], key=lambda t: t.sort_key())
            object_text = ", ".join(self._term(obj) for obj in objects)
            terminator = " ;" if index < len(predicates) - 1 else " ."
            lines.append(f"    {self._predicate(predicate)} {object_text}{terminator}")
        return lines

    def _predicate_sort_key(self, predicate: Term) -> tuple:
        # rdf:type first (conventional Turtle style), then alphabetical.
        return (0 if predicate == RDF.type else 1, str(predicate))

    def _predicate(self, predicate: Term) -> str:
        if predicate == RDF.type:
            return "a"
        return self._term(predicate)

    def _term(self, term: Term) -> str:
        if isinstance(term, URIRef):
            compact = self._nsm.compact(term)
            return compact if compact else term.n3()
        if isinstance(term, Literal):
            return self._literal(term)
        if isinstance(term, BNode):
            return term.n3()
        return term.n3()

    def _literal(self, literal: Literal) -> str:
        body = f'"{escape(literal.lexical)}"'
        if literal.lang:
            return f"{body}@{literal.lang}"
        if literal.datatype is not None:
            compact = self._nsm.compact(literal.datatype)
            marker = compact if compact else literal.datatype.n3()
            return f"{body}^^{marker}"
        return body


def serialize_turtle(graph: Graph, namespace_manager: NamespaceManager | None = None) -> str:
    """Convenience wrapper over :class:`TurtleSerializer`."""
    return TurtleSerializer(graph, namespace_manager).serialize()
