"""N-Triples reader and writer.

N-Triples is the line-oriented subset of Turtle: one triple per line, no
prefixes, no abbreviations.  It is used as the bulk-exchange format between
the synthetic dataset generators and the local endpoints, and as the
fallback serialisation when Turtle prettification is not wanted.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

from ..rdf import BNode, Graph, Literal, Triple, URIRef

__all__ = ["parse_ntriples", "serialize_ntriples", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input."""

    def __init__(self, message: str, line_number: int = 0) -> None:
        super().__init__(f"line {line_number}: {message}" if line_number else message)
        self.line_number = line_number


_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_][A-Za-z0-9_.-]*)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'           # lexical form with escapes
    r"(?:@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)"  # language tag
    r"|\^\^<([^<>\"{}|^`\\\x00-\x20]*)>)?"  # or datatype
)

_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def unescape(text: str) -> str:
    """Decode N-Triples/Turtle string escapes (\\n, \\t, \\uXXXX, ...).

    Unknown escape sequences are preserved verbatim (backslash included)
    rather than rejected: Linked Data literals frequently embed regular
    expressions — the paper's own alignment listing contains the pattern
    ``http://kisti.rkbexplorer.com/id/\\S*`` — and the original system
    accepted them as-is.
    """
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(text):
            out.append(ch)
            break
        nxt = text[i + 1]
        if nxt in _ESCAPES:
            out.append(_ESCAPES[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            out.append("\\" + nxt)
            i += 2
    return "".join(out)


def escape(text: str) -> str:
    """Encode a string for inclusion in an N-Triples/Turtle literal.

    Control characters are emitted as ``\\uXXXX`` escapes so that
    serialisations remain line-oriented regardless of the literal content.
    """
    encoded = (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )
    return "".join(
        ch if ch >= " " or ch in ("\t",) else f"\\u{ord(ch):04X}"
        for ch in encoded
    )


def _parse_term(token: str, line_number: int):
    token = token.strip()
    match = _IRI_RE.fullmatch(token)
    if match:
        return URIRef(match.group(1))
    match = _BNODE_RE.fullmatch(token)
    if match:
        return BNode(match.group(1))
    match = _LITERAL_RE.fullmatch(token)
    if match:
        lexical = unescape(match.group(1))
        lang = match.group(2)
        datatype = match.group(3)
        if lang:
            return Literal(lexical, lang=lang)
        if datatype:
            return Literal(lexical, datatype=URIRef(datatype))
        return Literal(lexical)
    raise NTriplesError(f"unparseable term: {token!r}", line_number)


def _split_terms(line: str, line_number: int) -> list[str]:
    """Split an N-Triples statement into its three term tokens."""
    terms: list[str] = []
    i = 0
    length = len(line)
    while i < length:
        ch = line[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "<":
            end = line.index(">", i)
            # absorb an optional datatype that follows a literal elsewhere
            terms.append(line[i : end + 1])
            i = end + 1
        elif ch == "_":
            match = re.match(r"_:[A-Za-z0-9_][A-Za-z0-9_.-]*", line[i:])
            if not match:
                raise NTriplesError("malformed blank node", line_number)
            terms.append(match.group(0))
            i += match.end()
        elif ch == '"':
            j = i + 1
            while j < length:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == '"':
                    break
                j += 1
            if j >= length:
                raise NTriplesError("unterminated literal", line_number)
            end = j + 1
            # language tag or datatype suffix
            rest = line[end:]
            suffix_match = re.match(r"@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*|\^\^<[^>]*>", rest)
            if suffix_match:
                end += suffix_match.end()
            terms.append(line[i:end])
            i = end
        elif ch == ".":
            i += 1
        else:
            raise NTriplesError(f"unexpected character {ch!r}", line_number)
    return terms


def parse_ntriples(text: str) -> Graph:
    """Parse N-Triples text into a new :class:`Graph`."""
    graph = Graph()
    for triple in iter_ntriples(text):
        graph.add(triple)
    return graph


def iter_ntriples(text: str) -> Iterator[Triple]:
    """Yield triples from N-Triples text one line at a time."""
    for line_number, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if not line.endswith("."):
            raise NTriplesError("statement does not end with '.'", line_number)
        body = line[:-1].strip()
        tokens = _split_terms(body, line_number)
        if len(tokens) != 3:
            raise NTriplesError(
                f"expected 3 terms, found {len(tokens)}", line_number
            )
        subject = _parse_term(tokens[0], line_number)
        predicate = _parse_term(tokens[1], line_number)
        obj = _parse_term(tokens[2], line_number)
        if isinstance(subject, Literal):
            raise NTriplesError("literal in subject position", line_number)
        if not isinstance(predicate, URIRef):
            raise NTriplesError("predicate must be an IRI", line_number)
        yield Triple(subject, predicate, obj)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialise triples to canonical (sorted) N-Triples text."""
    lines = []
    for triple in sorted(triples):
        lines.append(f"{_term_to_nt(triple.subject)} {_term_to_nt(triple.predicate)} "
                     f"{_term_to_nt(triple.object)} .")
    return "\n".join(lines) + ("\n" if lines else "")


def _term_to_nt(term) -> str:
    if isinstance(term, Literal):
        body = f'"{escape(term.lexical)}"'
        if term.lang:
            return f"{body}@{term.lang}"
        if term.datatype is not None:
            return f"{body}^^<{term.datatype}>"
        return body
    return term.n3()
