"""Tokenizer for the Turtle syntax.

Produces a stream of :class:`Token` objects consumed by
:mod:`repro.turtle.parser`.  The token inventory covers the Turtle subset
used across the project (which includes everything appearing in the
paper's listings): directives, IRIs, prefixed names, blank node labels,
string literals (single and triple quoted) with language tags and
datatypes, numeric and boolean literals, the ``a`` keyword and the
structural punctuation ``. ; , [ ] ( )``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


__all__ = ["Token", "TurtleLexError", "tokenize"]


class TurtleLexError(ValueError):
    """Raised when the input cannot be tokenised."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of: ``PREFIX_DIRECTIVE``, ``BASE_DIRECTIVE``, ``IRIREF``,
    ``PNAME``, ``BLANK_NODE``, ``STRING``, ``LANGTAG``, ``DATATYPE_MARKER``,
    ``INTEGER``, ``DECIMAL``, ``DOUBLE``, ``BOOLEAN``, ``A``, ``DOT``,
    ``SEMICOLON``, ``COMMA``, ``LBRACKET``, ``RBRACKET``, ``LPAREN``,
    ``RPAREN``, ``EOF``.
    """

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


_PATTERNS = [
    ("COMMENT", re.compile(r"#[^\n]*")),
    ("PREFIX_DIRECTIVE", re.compile(r"@prefix\b|PREFIX\b", re.IGNORECASE)),
    ("BASE_DIRECTIVE", re.compile(r"@base\b|BASE\b", re.IGNORECASE)),
    ("IRIREF", re.compile(r"<[^<>\"{}|^`\\\x00-\x20]*>")),
    ("STRING_LONG", re.compile(r'"""(?:[^"\\]|\\.|"(?!""))*"""', re.DOTALL)),
    ("STRING", re.compile(r'"(?:[^"\\\n]|\\.)*"')),
    ("STRING_LONG_SQ", re.compile(r"'''(?:[^'\\]|\\.|'(?!''))*'''", re.DOTALL)),
    ("STRING_SQ", re.compile(r"'(?:[^'\\\n]|\\.)*'")),
    ("LANGTAG", re.compile(r"@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*")),
    ("DATATYPE_MARKER", re.compile(r"\^\^")),
    ("BLANK_NODE", re.compile(r"_:[A-Za-z0-9_][A-Za-z0-9_.-]*")),
    ("DOUBLE", re.compile(r"[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+)")),
    ("DECIMAL", re.compile(r"[+-]?\d*\.\d+")),
    ("INTEGER", re.compile(r"[+-]?\d+")),
    ("BOOLEAN", re.compile(r"\b(?:true|false)\b")),
    # Prefixed name: optional prefix, ':', optional local part.  Local parts
    # may contain dots but must not end with one (the trailing dot is the
    # statement terminator).
    ("PNAME", re.compile(r"[A-Za-z0-9_][A-Za-z0-9_.-]*?:[A-Za-z0-9_]?[A-Za-z0-9_.\-%]*|:[A-Za-z0-9_][A-Za-z0-9_.\-%]*|[A-Za-z0-9_][A-Za-z0-9_.-]*?:")),
    ("A", re.compile(r"\ba\b")),
    ("DOT", re.compile(r"\.")),
    ("SEMICOLON", re.compile(r";")),
    ("COMMA", re.compile(r",")),
    ("LBRACKET", re.compile(r"\[")),
    ("RBRACKET", re.compile(r"\]")),
    ("LPAREN", re.compile(r"\(")),
    ("RPAREN", re.compile(r"\)")),
]

_STRING_KIND_MAP = {
    "STRING_LONG": "STRING",
    "STRING_SQ": "STRING",
    "STRING_LONG_SQ": "STRING",
}


def tokenize(text: str) -> list[Token]:
    """Tokenise Turtle text; raises :class:`TurtleLexError` on bad input."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)

    while position < length:
        ch = text[position]
        if ch in " \t\r":
            position += 1
            continue
        if ch == "\n":
            position += 1
            line += 1
            line_start = position
            continue

        column = position - line_start + 1
        for kind, pattern in _PATTERNS:
            match = pattern.match(text, position)
            if not match:
                continue
            value = match.group(0)
            if kind == "COMMENT":
                position = match.end()
                break
            # PNAME local parts must not swallow the statement-final dot.
            if kind == "PNAME" and value.endswith("."):
                value = value.rstrip(".")
                match_end = position + len(value)
            else:
                match_end = match.end()
            token_kind = _STRING_KIND_MAP.get(kind, kind)
            tokens.append(Token(token_kind, value, line, column))
            newlines = text.count("\n", position, match_end)
            if newlines:
                line += newlines
                line_start = text.rindex("\n", position, match_end) + 1
            position = match_end
            break
        else:
            raise TurtleLexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("EOF", "", line, 1))
    return tokens
