"""Turtle and N-Triples syntax support (parsers and serialisers)."""


from ..rdf import Graph, NamespaceManager
from .lexer import Token, TurtleLexError, tokenize
from .ntriples import (
    NTriplesError,
    iter_ntriples,
    parse_ntriples,
    serialize_ntriples,
)
from .parser import TurtleParseError, TurtleParser, parse_turtle
from .serializer import TurtleSerializer, serialize_turtle

__all__ = [
    "Token",
    "TurtleLexError",
    "tokenize",
    "TurtleParser",
    "TurtleParseError",
    "parse_turtle",
    "TurtleSerializer",
    "serialize_turtle",
    "NTriplesError",
    "parse_ntriples",
    "iter_ntriples",
    "serialize_ntriples",
    "parse_graph",
    "serialize_graph",
]


def parse_graph(text: str, format: str = "turtle",
                namespace_manager: NamespaceManager | None = None) -> Graph:
    """Parse RDF text in ``turtle`` or ``ntriples`` format."""
    normalized = format.lower().replace("-", "").replace("_", "")
    if normalized in ("turtle", "ttl"):
        return parse_turtle(text, namespace_manager)
    if normalized in ("ntriples", "nt"):
        return parse_ntriples(text)
    raise ValueError(f"unsupported RDF format: {format!r}")


def serialize_graph(graph: Graph, format: str = "turtle") -> str:
    """Serialise a graph to ``turtle`` or ``ntriples`` text."""
    normalized = format.lower().replace("-", "").replace("_", "")
    if normalized in ("turtle", "ttl"):
        return serialize_turtle(graph)
    if normalized in ("ntriples", "nt"):
        return serialize_ntriples(graph)
    raise ValueError(f"unsupported RDF format: {format!r}")
