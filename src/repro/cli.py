"""Command-line interface.

Three entry points (installed as console scripts by ``pyproject.toml``):

* ``repro-rewrite`` — rewrite a SPARQL query file against an alignment KB
  (Turtle) for a chosen target, printing the rewritten query.  This is the
  command-line twin of the web UI of Figure 4.
* ``repro-query`` — evaluate a SPARQL query against an RDF file (Turtle or
  N-Triples) and print the result table.
* ``repro-federate`` — run the demo federation over the built-in synthetic
  scenario and print per-dataset and merged result counts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .alignment import AlignmentStore, default_registry, ontology_alignments_from_graph
from .coreference import SameAsService
from .core import Mediator, TargetProfile
from .datasets import build_resist_scenario
from .federation import ExecutionPolicy, recall
from .rdf import OWL, URIRef
from .sparql import QueryEvaluator, ResultSet, parse_query
from .turtle import parse_graph

__all__ = ["main_rewrite", "main_query", "main_federate"]


def _read_text(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


# --------------------------------------------------------------------------- #
# repro-rewrite
# --------------------------------------------------------------------------- #
def main_rewrite(argv: Optional[Sequence[str]] = None) -> int:
    """Rewrite a query using an alignment KB and (optionally) a sameAs file."""
    parser = argparse.ArgumentParser(
        prog="repro-rewrite",
        description="Rewrite a SPARQL query for a target dataset using an RDF alignment KB.",
    )
    parser.add_argument("query", nargs="+",
                        help="path(s) to one or more SPARQL query files (rewritten as a batch)")
    parser.add_argument("alignments", help="path to the alignment KB (Turtle)")
    parser.add_argument("--target", required=True, help="URI of the target dataset")
    parser.add_argument("--source-ontology", default=None, help="URI of the source ontology")
    parser.add_argument("--sameas", default=None,
                        help="path to a Turtle/N-Triples file with owl:sameAs links")
    parser.add_argument("--uri-pattern", default=None,
                        help="regular expression of the target's instance URI space")
    parser.add_argument("--mode", choices=["bgp", "filter-aware", "algebra"], default="bgp")
    arguments = parser.parse_args(argv)

    alignment_graph = parse_graph(_read_text(arguments.alignments), format="turtle")
    store = AlignmentStore()
    imported = store.load_graph(alignment_graph)
    if imported == 0:
        print("warning: no ontology alignments found in the alignment KB", file=sys.stderr)

    sameas = SameAsService()
    if arguments.sameas:
        text = _read_text(arguments.sameas)
        format_name = "ntriples" if arguments.sameas.endswith(".nt") else "turtle"
        sameas.load_graph(parse_graph(text, format=format_name))

    target_uri = URIRef(arguments.target)
    mediator = Mediator(store, sameas)
    mediator.register_target(
        TargetProfile(dataset=target_uri, uri_pattern=arguments.uri_pattern)
    )
    source_ontology = URIRef(arguments.source_ontology) if arguments.source_ontology else None
    results = mediator.rewrite_many(
        [_read_text(path) for path in arguments.query],
        target_uri,
        source_ontology,
        mode=arguments.mode,
    )
    for path, result in zip(arguments.query, results):
        if len(results) > 1:
            print(f"# --- {path} ---")
        print(result.query_text)
        print(
            f"# {path}: alignments considered: {result.alignments_considered}; "
            f"triples matched: {result.report.matched_count}; "
            f"unmatched: {result.report.unmatched_count}",
            file=sys.stderr,
        )
    return 0


# --------------------------------------------------------------------------- #
# repro-query
# --------------------------------------------------------------------------- #
def main_query(argv: Optional[Sequence[str]] = None) -> int:
    """Evaluate a query over a local RDF file and print the results."""
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description="Evaluate a SPARQL query against a local RDF file.",
    )
    parser.add_argument("query", help="path to the SPARQL query file")
    parser.add_argument("data", help="path to the RDF data file (Turtle or N-Triples)")
    parser.add_argument("--format", choices=["turtle", "ntriples"], default=None,
                        help="RDF syntax of the data file (guessed from the extension)")
    parser.add_argument("--explain", action="store_true",
                        help="print the physical query plan instead of executing")
    parser.add_argument("--engine", choices=["planner", "naive"], default="planner",
                        help="evaluation engine (the naive path is the reference)")
    arguments = parser.parse_args(argv)

    format_name = arguments.format
    if format_name is None:
        format_name = "ntriples" if arguments.data.endswith(".nt") else "turtle"
    graph = parse_graph(_read_text(arguments.data), format=format_name)
    evaluator = QueryEvaluator(graph, use_planner=arguments.engine == "planner")
    query = parse_query(_read_text(arguments.query))
    if arguments.explain:
        print(evaluator.explain(query))
        return 0
    result = evaluator.evaluate(query)
    if isinstance(result, ResultSet):
        print(result.to_table())
        print(f"# {len(result)} rows", file=sys.stderr)
    else:
        print(result if not hasattr(result, "serialize") else result.serialize())
    return 0


# --------------------------------------------------------------------------- #
# repro-federate
# --------------------------------------------------------------------------- #
def main_federate(argv: Optional[Sequence[str]] = None) -> int:
    """Run the built-in federation demo (synthetic ReSIST scenario)."""
    parser = argparse.ArgumentParser(
        prog="repro-federate",
        description="Demonstrate federated co-author retrieval over the synthetic scenario.",
    )
    parser.add_argument("--persons", type=int, default=40)
    parser.add_argument("--papers", type=int, default=100)
    parser.add_argument("--rkb-coverage", type=float, default=0.55)
    parser.add_argument("--kisti-coverage", type=float, default=0.6)
    parser.add_argument("--dbpedia-coverage", type=float, default=0.35)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--parallel", type=int, default=8, metavar="WORKERS",
                        help="concurrent endpoint requests (0 or 1 = sequential)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-attempt endpoint timeout")
    parser.add_argument("--retries", type=int, default=0,
                        help="retries per endpoint after a failure")
    parser.add_argument("--latency", type=float, default=0.0, metavar="SECONDS",
                        help="simulated per-query endpoint latency")
    arguments = parser.parse_args(argv)

    scenario = build_resist_scenario(
        n_persons=arguments.persons,
        n_papers=arguments.papers,
        rkb_coverage=arguments.rkb_coverage,
        kisti_coverage=arguments.kisti_coverage,
        dbpedia_coverage=arguments.dbpedia_coverage,
        seed=arguments.seed,
    )
    if arguments.latency:
        for dataset in scenario.registry:
            dataset.endpoint.latency = arguments.latency  # type: ignore[attr-defined]
    scenario.registry.default_policy = ExecutionPolicy(
        timeout=arguments.timeout,
        max_retries=max(0, arguments.retries),
    )
    engine = scenario.service.federation
    engine.parallel = arguments.parallel > 1
    engine.max_workers = max(1, arguments.parallel)

    person_key = scenario.world.most_prolific_author()
    person_uri = scenario.akt_person_uri(person_key)
    query = f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """
    print(f"Dataset sizes: {scenario.dataset_sizes()}")
    print(f"Query subject: {person_uri}")

    local = scenario.endpoint(scenario.rkb_dataset).select(query)
    federated = scenario.service.federate(
        query,
        source_ontology=scenario.source_ontology,
        source_dataset=scenario.rkb_dataset,
        mode="filter-aware",
    )
    gold = scenario.gold_coauthor_uris(person_key)
    print(f"RKB-only co-authors:   {len(local.distinct_values('a')):3d} "
          f"(recall {recall(local.distinct_values('a'), gold):.2f})")
    print(f"Federated co-authors:  {len(federated.distinct_values('a')):3d} "
          f"(recall {recall(federated.distinct_values('a'), gold):.2f})")
    for entry in federated.per_dataset:
        status = "ok" if entry.succeeded else f"error: {entry.error}"
        attempts = f", {entry.attempts} attempts" if entry.attempts != 1 else ""
        print(f"  {entry.dataset_uri}: {entry.row_count} rows ({status}{attempts})")
    mode = f"parallel x{engine.max_workers}" if engine.parallel else "sequential"
    print(f"Fan-out: {mode}; wall-clock {federated.elapsed:.3f}s; "
          f"endpoint attempts {federated.total_attempts}")
    health = scenario.registry.health()
    if any(state != "closed" for state in health.values()):
        for uri, state in health.items():
            print(f"  breaker {uri}: {state}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_federate())
