"""Command-line interface.

Entry points (installed as console scripts by ``pyproject.toml``):

* ``repro-rewrite`` — rewrite a SPARQL query file against an alignment KB
  (Turtle) for a chosen target, printing the rewritten query.  This is the
  command-line twin of the web UI of Figure 4.
* ``repro-query`` — evaluate a SPARQL query against an RDF file (Turtle or
  N-Triples) and print the results (table by default, or any SPARQL
  results wire format via ``--format``).
* ``repro-federate`` — run the demo federation over the built-in synthetic
  scenario and print per-dataset and merged result counts.
* ``repro-serve`` — publish an RDF file, a persistent store directory
  (``--store``) or the built-in mediated federation as a W3C SPARQL
  Protocol endpoint over HTTP.
* ``repro-store`` — build, compact and inspect persistent
  :class:`~repro.rdf.SegmentStore` directories.
* ``repro-lint`` — run the static query analyzer over a batch of SPARQL
  files and print the diagnostics (text or JSON); exits non-zero when
  any file has error-severity findings.
* ``repro-trace`` — render distributed-trace span trees (and a
  time-by-layer table) from the ``REPRO_RUN_EVENTS`` JSONL file written
  by a traced run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from .alignment import AlignmentStore
from .coreference import SameAsService
from .core import Mediator, TargetProfile
from .datasets import build_resist_scenario
from .federation import ExecutionPolicy, recall
from .rdf import URIRef
from .sparql import ENGINES, AskResult, QueryEvaluator, ResultSet, parse_query, write_results
from .sparql.analysis import QueryAnalysisError, analyze_query
from .sparql.parser import SparqlParseError
from .sparql.tokenizer import SparqlLexError
from .turtle import parse_graph

__all__ = [
    "main_rewrite",
    "main_query",
    "main_federate",
    "main_serve",
    "main_store",
    "main_lint",
    "main_trace",
]

#: Output format choices shared by ``repro-query`` and ``repro-federate``.
_OUTPUT_FORMATS = ["table", "json", "xml", "csv", "tsv"]


def _read_text(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


# --------------------------------------------------------------------------- #
# repro-rewrite
# --------------------------------------------------------------------------- #
def main_rewrite(argv: Sequence[str] | None = None) -> int:
    """Rewrite a query using an alignment KB and (optionally) a sameAs file."""
    parser = argparse.ArgumentParser(
        prog="repro-rewrite",
        description="Rewrite a SPARQL query for a target dataset using an RDF alignment KB.",
    )
    parser.add_argument("query", nargs="+",
                        help="path(s) to one or more SPARQL query files (rewritten as a batch)")
    parser.add_argument("alignments", help="path to the alignment KB (Turtle)")
    parser.add_argument("--target", required=True, help="URI of the target dataset")
    parser.add_argument("--source-ontology", default=None, help="URI of the source ontology")
    parser.add_argument("--sameas", default=None,
                        help="path to a Turtle/N-Triples file with owl:sameAs links")
    parser.add_argument("--uri-pattern", default=None,
                        help="regular expression of the target's instance URI space")
    parser.add_argument("--mode", choices=["bgp", "filter-aware", "algebra"], default="bgp")
    arguments = parser.parse_args(argv)

    alignment_graph = parse_graph(_read_text(arguments.alignments), format="turtle")
    store = AlignmentStore()
    imported = store.load_graph(alignment_graph)
    if imported == 0:
        print("warning: no ontology alignments found in the alignment KB", file=sys.stderr)

    sameas = SameAsService()
    if arguments.sameas:
        text = _read_text(arguments.sameas)
        format_name = "ntriples" if arguments.sameas.endswith(".nt") else "turtle"
        sameas.load_graph(parse_graph(text, format=format_name))

    target_uri = URIRef(arguments.target)
    mediator = Mediator(store, sameas)
    mediator.register_target(
        TargetProfile(dataset=target_uri, uri_pattern=arguments.uri_pattern)
    )
    source_ontology = URIRef(arguments.source_ontology) if arguments.source_ontology else None
    results = mediator.rewrite_many(
        [_read_text(path) for path in arguments.query],
        target_uri,
        source_ontology,
        mode=arguments.mode,
    )
    for path, result in zip(arguments.query, results, strict=True):
        if len(results) > 1:
            print(f"# --- {path} ---")
        print(result.query_text)
        print(
            f"# {path}: alignments considered: {result.alignments_considered}; "
            f"triples matched: {result.report.matched_count}; "
            f"unmatched: {result.report.unmatched_count}",
            file=sys.stderr,
        )
    return 0


# --------------------------------------------------------------------------- #
# repro-query
# --------------------------------------------------------------------------- #
def main_query(argv: Sequence[str] | None = None) -> int:
    """Evaluate a query over a local RDF file and print the results."""
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description="Evaluate a SPARQL query against a local RDF file.",
    )
    parser.add_argument("query", help="path to the SPARQL query file")
    parser.add_argument("data", help="path to the RDF data file (Turtle or N-Triples)")
    parser.add_argument("--data-format", choices=["turtle", "ntriples"], default=None,
                        help="RDF syntax of the data file (guessed from the extension)")
    parser.add_argument("--format", choices=_OUTPUT_FORMATS, default="table",
                        help="result output format (SPARQL results JSON/XML/CSV/TSV "
                             "or the human-readable table)")
    parser.add_argument("--explain", action="store_true",
                        help="print the physical query plan instead of executing")
    parser.add_argument("--analyze", action="store_true",
                        help="execute the query and print the EXPLAIN ANALYZE report "
                             "(per-operator rows, batches and wall time)")
    parser.add_argument("--engine", choices=list(ENGINES), default="planner",
                        help="evaluation engine: the cost-based planner or the "
                             "syntax-ordered naive path (both on the batched "
                             "executor), or the reference/streaming oracles")
    parser.add_argument("--lint", action="store_true",
                        help="print the static analyzer's diagnostics instead of "
                             "executing (exit 1 on error-severity findings)")
    parser.add_argument("--strict", action="store_true",
                        help="refuse to execute a query with error-severity "
                             "diagnostics (with --lint: warnings also fail)")
    arguments = parser.parse_args(argv)

    format_name = arguments.data_format
    if format_name is None:
        format_name = "ntriples" if arguments.data.endswith(".nt") else "turtle"
    graph = parse_graph(_read_text(arguments.data), format=format_name)
    evaluator = QueryEvaluator(graph, engine=arguments.engine, strict=arguments.strict)
    query = parse_query(_read_text(arguments.query))
    if arguments.lint:
        analysis = analyze_query(query, graph)
        for diagnostic in analysis.diagnostics:
            print(diagnostic.render(arguments.query))
        failed = analysis.has_errors or (arguments.strict and analysis.warnings)
        return 1 if failed else 0
    if arguments.explain:
        print(evaluator.explain(query))
        return 0
    try:
        if arguments.analyze:
            # The reference/streaming oracles analyze through their batched
            # equivalent (see QueryEvaluator.analyze).
            _, event = evaluator.analyze(query)
            print(event.render())
            return 0
        result = evaluator.evaluate(query)
    except QueryAnalysisError as error:
        for diagnostic in error.diagnostics:
            print(diagnostic.render(arguments.query), file=sys.stderr)
        return 1
    for diagnostic in getattr(result, "diagnostics", []):
        print(f"# {diagnostic.render(arguments.query)}", file=sys.stderr)
    if isinstance(result, ResultSet):
        print(write_results(result, arguments.format), end="")
        print(f"# {len(result)} rows", file=sys.stderr)
    elif isinstance(result, AskResult):
        if arguments.format in ("csv", "tsv"):
            print("error: ASK results have no CSV/TSV encoding; use --format json or xml",
                  file=sys.stderr)
            return 2
        print(write_results(result, arguments.format), end="")
    else:  # CONSTRUCT: an RDF graph, not a result set
        print(result.serialize())
    return 0


# --------------------------------------------------------------------------- #
# repro-federate
# --------------------------------------------------------------------------- #
def main_federate(argv: Sequence[str] | None = None) -> int:
    """Run the built-in federation demo (synthetic ReSIST scenario)."""
    parser = argparse.ArgumentParser(
        prog="repro-federate",
        description="Demonstrate federated co-author retrieval over the synthetic scenario.",
    )
    parser.add_argument("--persons", type=int, default=40)
    parser.add_argument("--papers", type=int, default=100)
    parser.add_argument("--rkb-coverage", type=float, default=0.55)
    parser.add_argument("--kisti-coverage", type=float, default=0.6)
    parser.add_argument("--dbpedia-coverage", type=float, default=0.35)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--parallel", type=int, default=8, metavar="WORKERS",
                        help="concurrent endpoint requests (0 or 1 = sequential)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-attempt endpoint timeout")
    parser.add_argument("--retries", type=int, default=0,
                        help="retries per endpoint after a failure")
    parser.add_argument("--latency", type=float, default=0.0, metavar="SECONDS",
                        help="simulated per-query endpoint latency")
    parser.add_argument("--format", choices=_OUTPUT_FORMATS, default="table",
                        help="print the merged result set in this format "
                             "(non-table formats move the run summary to stderr)")
    parser.add_argument("--strategy", choices=["fanout", "decompose"], default="fanout",
                        help="federated execution strategy: ship the whole query to "
                             "every dataset (fanout) or run source selection, "
                             "exclusive groups and bound joins (decompose)")
    parser.add_argument("--ask-probes", action=argparse.BooleanOptionalAction, default=True,
                        help="let source selection issue ASK probes for patterns the "
                             "VoID statistics cannot settle")
    parser.add_argument("--bind-join-batch", type=int, default=None, metavar="ROWS",
                        help="left rows shipped per bound-join VALUES batch")
    parser.add_argument("--explain", action="store_true",
                        help="print the federated plan (per-dataset sub-queries) "
                             "instead of executing")
    parser.add_argument("--analyze", action="store_true",
                        help="print the EXPLAIN ANALYZE report of the federated run "
                             "(operator timings, endpoints contacted, rows shipped)")
    parser.add_argument("--lint", action="store_true",
                        help="print the static local + federation diagnostics for the "
                             "demo query instead of executing (exit 1 on errors)")
    arguments = parser.parse_args(argv)

    scenario = build_resist_scenario(
        n_persons=arguments.persons,
        n_papers=arguments.papers,
        rkb_coverage=arguments.rkb_coverage,
        kisti_coverage=arguments.kisti_coverage,
        dbpedia_coverage=arguments.dbpedia_coverage,
        seed=arguments.seed,
    )
    if arguments.latency:
        for dataset in scenario.registry:
            dataset.endpoint.latency = arguments.latency  # type: ignore[attr-defined]
    scenario.registry.default_policy = ExecutionPolicy(
        timeout=arguments.timeout,
        max_retries=max(0, arguments.retries),
    )
    engine = scenario.service.federation
    engine.parallel = arguments.parallel > 1
    engine.max_workers = max(1, arguments.parallel)
    engine.ask_probes = arguments.ask_probes
    if arguments.bind_join_batch is not None:
        engine.bind_join_batch = max(1, arguments.bind_join_batch)

    person_key = scenario.world.most_prolific_author()
    person_uri = scenario.akt_person_uri(person_key)
    query = f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """
    if arguments.lint:
        diagnostics = engine.lint(
            query,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        for diagnostic in diagnostics:
            print(diagnostic.render("demo-query"))
        if not diagnostics:
            print("no diagnostics", file=sys.stderr)
        return 1 if any(d.severity == "error" for d in diagnostics) else 0

    if arguments.explain:
        if arguments.strategy == "decompose":
            plan = engine.decompose_plan(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
            )
            print(plan.explain())
        else:
            for uri, text in scenario.service.explain(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
            ).items():
                print(f"=== {uri} ===")
                print(text)
        return 0

    # With a machine-readable --format the merged result set owns stdout
    # and the human-readable run summary moves to stderr.
    summary = sys.stdout if arguments.format == "table" else sys.stderr
    print(f"Dataset sizes: {scenario.dataset_sizes()}", file=summary)
    print(f"Query subject: {person_uri}", file=summary)

    local = scenario.endpoint(scenario.rkb_dataset).select(query)
    run_event = None
    if arguments.analyze:
        federated, run_event = scenario.service.analyze(
            query,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
            strategy=arguments.strategy,
        )
    else:
        federated = scenario.service.federate(
            query,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
            strategy=arguments.strategy,
        )
    gold = scenario.gold_coauthor_uris(person_key)
    print(f"RKB-only co-authors:   {len(local.distinct_values('a')):3d} "
          f"(recall {recall(local.distinct_values('a'), gold):.2f})", file=summary)
    print(f"Federated co-authors:  {len(federated.distinct_values('a')):3d} "
          f"(recall {recall(federated.distinct_values('a'), gold):.2f})", file=summary)
    health = scenario.registry.health()
    for entry in federated.per_dataset:
        status = "ok" if entry.succeeded else f"error: {entry.error}"
        attempts = f", {entry.attempts} attempts" if entry.attempts != 1 else ""
        statistics = health[entry.dataset_uri].statistics
        served = (f"; served {statistics.total_queries} queries, "
                  f"{statistics.total_failures} failures"
                  if statistics is not None else "")
        print(f"  {entry.dataset_uri}: {entry.row_count} rows ({status}{attempts}{served})",
              file=summary)
    mode = f"parallel x{engine.max_workers}" if engine.parallel else "sequential"
    print(f"Strategy: {federated.strategy} ({mode}); wall-clock {federated.elapsed:.3f}s; "
          f"endpoint attempts {federated.total_attempts}", file=summary)
    if federated.strategy == "decompose":
        print(f"Decomposition: {federated.endpoints_contacted} endpoints contacted, "
              f"{federated.total_requests} requests, {federated.total_rows} rows shipped",
              file=summary)
    if any(state != "closed" for state in health.values()):
        for uri, state in health.items():
            print(f"  breaker {uri}: {state}", file=summary)
    if run_event is not None:
        print(run_event.render(), file=summary)
    if arguments.format != "table":
        print(write_results(federated.merged(), arguments.format), end="")
    return 0


# --------------------------------------------------------------------------- #
# repro-lint
# --------------------------------------------------------------------------- #
def main_lint(argv: Sequence[str] | None = None) -> int:
    """Run the static query analyzer over a batch of SPARQL files.

    Prints one diagnostic per line (``file:line:col: severity[CODE]
    message``) or a JSON report with ``--format json``.  Parse failures
    are reported as error-severity ``PARSE`` findings.  The exit status
    is 1 when any file has error-severity findings (with ``--strict``,
    warnings also fail), 0 otherwise — suitable as a CI gate.
    """
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically analyze SPARQL query files and print diagnostics.",
    )
    parser.add_argument("query", nargs="+", help="path(s) to SPARQL query files")
    parser.add_argument("--data", default=None, metavar="FILE",
                        help="optional RDF file (Turtle or N-Triples); enables the "
                             "statistics-aware checks (cartesian product sizing)")
    parser.add_argument("--data-format", choices=["turtle", "ntriples"], default=None,
                        help="RDF syntax of --data (guessed from the extension)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="diagnostic output format")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures too")
    arguments = parser.parse_args(argv)

    graph = None
    if arguments.data:
        format_name = arguments.data_format
        if format_name is None:
            format_name = "ntriples" if arguments.data.endswith(".nt") else "turtle"
        graph = parse_graph(_read_text(arguments.data), format=format_name)

    import json

    failed = False
    report = []
    for path in arguments.query:
        text = _read_text(path)
        try:
            query = parse_query(text)
        except (SparqlLexError, SparqlParseError) as error:
            line = getattr(error, "line", None) or 1
            column = getattr(error, "column", None) or 1
            failed = True
            if arguments.format == "json":
                report.append({
                    "file": path,
                    "diagnostics": [{
                        "code": "PARSE",
                        "severity": "error",
                        "message": str(error),
                        "span": {"line": line, "column": column,
                                 "end_line": line, "end_column": column + 1},
                    }],
                })
            else:
                print(f"{path}:{line}:{column}: error[PARSE] {error}")
            continue
        analysis = analyze_query(query, graph)
        if analysis.has_errors or (arguments.strict and analysis.warnings):
            failed = True
        if arguments.format == "json":
            report.append({"file": path, "diagnostics": analysis.to_json_list()})
        else:
            for diagnostic in analysis.diagnostics:
                print(diagnostic.render(path))
    if arguments.format == "json":
        print(json.dumps(report, indent=2))
    return 1 if failed else 0


# --------------------------------------------------------------------------- #
# repro-serve
# --------------------------------------------------------------------------- #
def main_serve(argv: Sequence[str] | None = None) -> int:
    """Publish a SPARQL endpoint over HTTP (the W3C SPARQL Protocol).

    Three modes:

    * ``repro-serve data.ttl [more.ttl ...]`` — serve the union of the
      given RDF files as a single endpoint (SELECT/ASK/CONSTRUCT);
    * ``repro-serve --store DIR`` — serve a persistent
      :class:`~repro.rdf.SegmentStore` directory (built with
      ``repro-store build``) without loading it into memory;
    * ``repro-serve --scenario`` — serve the built-in mediated federation
      (every SELECT is rewritten per dataset, executed and merged), or one
      scenario dataset with ``--dataset``.
    """
    from .federation import LocalSparqlEndpoint
    from .server import EndpointBackend, FederationBackend, SparqlHttpServer

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve an RDF file or the demo federation as a SPARQL Protocol endpoint.",
    )
    parser.add_argument("data", nargs="*",
                        help="RDF file(s) to serve (Turtle or N-Triples); "
                             "omit when using --scenario")
    parser.add_argument("--scenario", action="store_true",
                        help="serve the built-in mediated federation scenario")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="serve a persistent SegmentStore directory "
                             "(see repro-store build)")
    parser.add_argument("--dataset", default=None, metavar="URI",
                        help="with --scenario: serve just this dataset's endpoint "
                             "instead of the federation")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="TCP port (0 binds an ephemeral port)")
    parser.add_argument("--uri", default=None,
                        help="endpoint identity URI (defaults to the server URL)")
    parser.add_argument("--data-format", choices=["turtle", "ntriples"], default=None,
                        help="RDF syntax of the data files (guessed from the extension)")
    parser.add_argument("--mode", choices=["bgp", "filter-aware", "algebra"],
                        default="filter-aware",
                        help="rewriting mode of the federation backend")
    parser.add_argument("--strategy", choices=["fanout", "decompose"], default="fanout",
                        help="execution strategy of the federation backend")
    parser.add_argument("--strict", action="store_true",
                        help="refuse queries with error-severity static-analysis "
                             "diagnostics (HTTP 400 with a structured JSON body)")
    parser.add_argument("--cache-size", type=int, default=128,
                        help="response cache entries (0 disables caching)")
    parser.add_argument("--persons", type=int, default=40)
    parser.add_argument("--papers", type=int, default=100)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    parser.add_argument("--trace", action="store_true",
                        help="enable distributed tracing (spans export to the "
                             "REPRO_RUN_EVENTS JSONL file; see repro-trace)")
    arguments = parser.parse_args(argv)

    if arguments.trace:
        from .obs import get_tracer

        get_tracer().enable()

    modes = sum((arguments.scenario, bool(arguments.data), arguments.store is not None))
    if modes != 1:
        print("error: serve RDF files, --store DIR or --scenario (exactly one)",
              file=sys.stderr)
        return 2

    if arguments.store is not None:
        from .rdf import StoreError, open_graph

        store_dir = Path(arguments.store)
        if not (store_dir / "MANIFEST.json").exists():
            print(f"error: {store_dir} is not a store directory "
                  "(no MANIFEST.json; create one with repro-store build)", file=sys.stderr)
            return 2
        try:
            graph = open_graph(store_dir)
        except StoreError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        placeholder = f"http://{arguments.host}:{arguments.port or 0}/sparql"
        endpoint = LocalSparqlEndpoint(
            URIRef(arguments.uri or placeholder), graph, name=str(store_dir),
        )
        backend = EndpointBackend(endpoint, strict=arguments.strict)
    elif arguments.scenario:
        scenario = build_resist_scenario(
            n_persons=arguments.persons,
            n_papers=arguments.papers,
            seed=arguments.seed,
        )
        if arguments.dataset is not None:
            try:
                dataset = scenario.registry.get(URIRef(arguments.dataset))
            except KeyError:
                known = ", ".join(str(uri) for uri in scenario.registry.dataset_uris())
                print(f"error: unknown dataset {arguments.dataset}; "
                      f"scenario datasets: {known}", file=sys.stderr)
                return 2
            backend = EndpointBackend(dataset.endpoint, strict=arguments.strict)
        else:
            backend = FederationBackend(
                scenario.service,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode=arguments.mode,
                strategy=arguments.strategy,
                strict=arguments.strict,
            )
    else:
        from .rdf import Graph

        graph = Graph()
        for path in arguments.data:
            format_name = arguments.data_format
            if format_name is None:
                format_name = "ntriples" if path.endswith(".nt") else "turtle"
            graph.add_all(parse_graph(_read_text(path), format=format_name))
        placeholder = f"http://{arguments.host}:{arguments.port or 0}/sparql"
        endpoint = LocalSparqlEndpoint(
            URIRef(arguments.uri or placeholder), graph,
            name=", ".join(arguments.data),
        )
        backend = EndpointBackend(endpoint, strict=arguments.strict)

    server = SparqlHttpServer(
        backend,
        host=arguments.host,
        port=arguments.port,
        cache_size=arguments.cache_size,
        quiet=not arguments.verbose,
    )
    print(f"Serving {backend.description}", file=sys.stderr)
    print(f"SPARQL endpoint: {server.query_url}", flush=True)
    print(f"Health: {server.url}/health — Metrics: {server.url}/metrics", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


# --------------------------------------------------------------------------- #
# repro-store
# --------------------------------------------------------------------------- #
def main_store(argv: Sequence[str] | None = None) -> int:
    """Build, compact and inspect persistent ``SegmentStore`` directories.

    Subcommands:

    * ``repro-store build DIR data.ttl [...]`` — parse RDF files into the
      store at ``DIR`` (created if missing, extended if present) and flush
      to immutable index segments;
    * ``repro-store compact DIR`` — merge all segments into one and drop
      tombstoned deletes;
    * ``repro-store stats DIR`` — print size, layout and vocabulary
      statistics without loading any triple data.
    """
    from .rdf import Graph, SegmentStore, StoreError

    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Manage persistent triple-store directories (SegmentStore).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="load RDF files into a store directory")
    build.add_argument("store", metavar="DIR", help="store directory (created if missing)")
    build.add_argument("data", nargs="+", help="RDF file(s) to load (Turtle or N-Triples)")
    build.add_argument("--data-format", choices=["turtle", "ntriples"], default=None,
                       help="RDF syntax of the data files (guessed from the extension)")
    build.add_argument("--buffer-limit", type=int, default=SegmentStore.DEFAULT_BUFFER_LIMIT,
                       metavar="TRIPLES", help="write-buffer size between segment flushes")

    compact = commands.add_parser("compact",
                                  help="merge segments and drop tombstoned deletes")
    compact.add_argument("store", metavar="DIR")

    stats = commands.add_parser("stats", help="print store size and layout statistics")
    stats.add_argument("store", metavar="DIR")
    stats.add_argument("--top", type=int, default=5, metavar="N",
                       help="show the N most frequent predicates and classes")

    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "build":
            store = SegmentStore(arguments.store, buffer_limit=arguments.buffer_limit)
            graph = Graph(store=store)
            loaded = 0
            for path in arguments.data:
                format_name = arguments.data_format
                if format_name is None:
                    format_name = "ntriples" if path.endswith(".nt") else "turtle"
                before = len(graph)
                graph.add_all(parse_graph(_read_text(path), format=format_name))
                loaded += len(graph) - before
                print(f"{path}: +{len(graph) - before} triples", file=sys.stderr)
            graph.close()
            print(f"{arguments.store}: {len(store)} triples in "
                  f"{len(store.segment_names)} segment(s) (+{loaded} new)")
            return 0

        if arguments.command == "compact":
            store = SegmentStore(arguments.store)
            before = len(store.segment_names)
            tombstones = store.tombstoned
            changed = store.compact()
            store.close()
            if changed:
                print(f"{arguments.store}: {before} segment(s) -> "
                      f"{len(store.segment_names)}, {tombstones} tombstone(s) dropped")
            else:
                print(f"{arguments.store}: already compact")
            return 0

        # stats
        store = SegmentStore(arguments.store)
        statistics = store.stats
        print(f"store:      {arguments.store}")
        print(f"triples:    {len(store)}")
        print(f"segments:   {len(store.segment_names)}"
              + (f" ({', '.join(store.segment_names)})" if store.segment_names else ""))
        print(f"buffered:   {store.buffered}")
        print(f"tombstones: {store.tombstoned}")
        print(f"terms:      {len(store.dictionary)}")
        print(f"distinct:   {statistics.distinct_subjects} subjects, "
              f"{statistics.distinct_predicates} predicates, "
              f"{statistics.distinct_objects} objects")
        for label, counts in (("predicate", statistics.predicate_counts),
                              ("class", statistics.class_counts)):
            ranked = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
            for term, count in ranked[:max(0, arguments.top)]:
                print(f"  {label} {term}: {count}")
        store.close()
        return 0
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


# --------------------------------------------------------------------------- #
# repro-trace
# --------------------------------------------------------------------------- #
#: Span attributes worth showing inline in the rendered tree.
_TRACE_DETAIL_ATTRS = (
    "method", "path", "status", "dataset", "endpoint", "kind", "engine",
    "attempts", "operator", "rows", "rows_out", "units", "error",
)


def _load_spans(path: str) -> list[dict]:
    """The ``"kind": "span"`` lines of a ``REPRO_RUN_EVENTS`` JSONL file."""
    import json

    spans: list[dict] = []
    for number, line in enumerate(_read_text(path).splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            print(f"warning: {path}:{number}: not valid JSON: {error}", file=sys.stderr)
            continue
        if isinstance(record, dict) and record.get("kind") == "span":
            spans.append(record)
    return spans


def _render_span(span: dict, children: dict, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    duration = float(span.get("duration") or 0.0) * 1000
    layer = span.get("attributes", {}).get("layer", "?")
    details = " ".join(
        f"{key}={span['attributes'][key]}"
        for key in _TRACE_DETAIL_ATTRS
        if span.get("attributes", {}).get(key) is not None and key != "layer"
    )
    line = f"{pad}{span.get('name', '?')}  {duration:.2f} ms  [{layer}]"
    if details:
        line += f"  {details}"
    lines.append(line)
    for event in span.get("events", ()):
        extras = ", ".join(
            f"{key}={value}" for key, value in event.items()
            if key not in ("name", "time")
        )
        lines.append(f"{pad}  ! {event.get('name', '?')}" + (f" ({extras})" if extras else ""))
    for child in children.get(span.get("span_id"), ()):
        _render_span(child, children, indent + 1, lines)


def render_trace(spans: list[dict]) -> str:
    """The span tree of one trace, children indented under parents."""
    by_id = {span.get("span_id"): span for span in spans}
    children: dict = {}
    roots: list[dict] = []
    for span in sorted(spans, key=lambda entry: float(entry.get("start") or 0.0)):
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []
    for root in roots:
        _render_span(root, children, 1, lines)
    return "\n".join(lines)


def layer_table(spans: list[dict]) -> list[tuple[str, float, int]]:
    """``(layer, self seconds, span count)`` rows, most expensive first.

    Self time is a span's duration minus its children's durations (clamped
    at zero), so layers don't double-count each other: the federation
    layer's time excludes the HTTP client calls nested inside it.
    """
    child_seconds: dict[str, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(
                span.get("duration") or 0.0
            )
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        layer = str(span.get("attributes", {}).get("layer", "?"))
        own = float(span.get("duration") or 0.0)
        own -= child_seconds.get(span.get("span_id", ""), 0.0)
        totals[layer] = totals.get(layer, 0.0) + max(0.0, own)
        counts[layer] = counts.get(layer, 0) + 1
    return sorted(
        ((layer, totals[layer], counts[layer]) for layer in totals),
        key=lambda row: -row[1],
    )


def main_trace(argv: Sequence[str] | None = None) -> int:
    """Render trace span trees from a ``REPRO_RUN_EVENTS`` JSONL file.

    Spans (``"kind": "span"`` lines) are grouped by trace id and rendered
    as indented trees with per-span duration, layer and key attributes;
    span events (retries, breaker transitions, exceptions) appear as
    ``!``-prefixed lines under their span.  ``--layers`` adds a
    time-by-layer table (self time, so layers don't double-count), and
    the run-event side of the same file feeds ``benchmarks/compare.py
    --events``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render distributed-trace span trees from a run-events JSONL file.",
    )
    parser.add_argument("events", help="path to the REPRO_RUN_EVENTS JSONL file")
    parser.add_argument("--trace", default=None, metavar="TRACE_ID",
                        help="render only this trace id (prefixes accepted)")
    parser.add_argument("--list", action="store_true", dest="list_traces",
                        help="one summary line per trace instead of full trees")
    parser.add_argument("--layers", action="store_true",
                        help="append the time-by-layer aggregation table")
    arguments = parser.parse_args(argv)

    try:
        spans = _load_spans(arguments.events)
    except OSError as error:
        print(f"error: cannot read {arguments.events}: {error}", file=sys.stderr)
        return 2
    if arguments.trace:
        spans = [
            span for span in spans
            if str(span.get("trace_id", "")).startswith(arguments.trace)
        ]
    if not spans:
        print("error: no trace spans found (enable tracing with REPRO_TRACE=1 "
              "or repro-serve --trace, and export REPRO_RUN_EVENTS)", file=sys.stderr)
        return 1

    traces: dict[str, list[dict]] = {}
    for span in spans:
        traces.setdefault(str(span.get("trace_id", "?")), []).append(span)
    # Oldest trace first: the order queries actually ran.
    ordered = sorted(
        traces.items(),
        key=lambda item: min(float(span.get("start") or 0.0) for span in item[1]),
    )
    for trace_id, members in ordered:
        elapsed = (
            max(float(span.get("end") or 0.0) for span in members)
            - min(float(span.get("start") or 0.0) for span in members)
        ) * 1000
        print(f"trace {trace_id}  ({len(members)} spans, {elapsed:.2f} ms)")
        if not arguments.list_traces:
            print(render_trace(members))
    if arguments.layers:
        print("time by layer (self):")
        rows = layer_table(spans)
        width = max(len(layer) for layer, _, _ in rows)
        for layer, seconds, count in rows:
            print(f"  {layer:<{width}}  {seconds * 1000:9.2f} ms  ({count} spans)")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_federate())
