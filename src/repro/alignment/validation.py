"""Alignment validation and structural comparison.

Beyond the hard well-formedness constraints enforced by the model classes,
this module provides:

* :func:`validate_entity_alignment` — a linter returning the list of
  problems (errors and warnings) an alignment author should fix before
  publishing the alignment to the mediator's KB,
* :func:`validate_ontology_alignment` — the same at the OA level,
* :func:`rename_variables` / :func:`structurally_equivalent` — comparison
  of alignments modulo variable renaming (used for RDF round-trip tests,
  where blank-node labels are not preserved verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..rdf import Term, URIRef, Variable
from .functions import FunctionRegistry
from .model import EntityAlignment, FunctionalDependency, OntologyAlignment

__all__ = [
    "ValidationIssue",
    "validate_entity_alignment",
    "validate_ontology_alignment",
    "rename_variables",
    "structurally_equivalent",
]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found by the validator."""

    severity: str  # "error" or "warning"
    message: str

    def is_error(self) -> bool:
        return self.severity == "error"

    def __str__(self) -> str:
        return f"{self.severity}: {self.message}"


def validate_entity_alignment(
    alignment: EntityAlignment,
    registry: FunctionRegistry | None = None,
) -> list[ValidationIssue]:
    """Lint an entity alignment.

    Errors:

    * empty RHS (unreachable through the constructor, checked defensively),
    * an FD whose target variable does not appear in the RHS — the computed
      value would never reach the rewritten pattern,
    * an FD parameter variable that appears in neither LHS nor RHS,
    * an FD naming a function absent from the supplied registry.

    Warnings:

    * LHS with no variables (a fully ground head only ever matches one
      exact triple),
    * RHS variables that are neither LHS variables, FD targets nor shared
      with other RHS patterns — they will be renamed to fresh variables at
      every application, which is usually intended but worth flagging,
    * an FD target that also occurs in the LHS (the function would
      overwrite a matched binding).
    """
    issues: list[ValidationIssue] = []
    lhs_variables = alignment.lhs_variables()
    rhs_variables = alignment.rhs_variables()

    if not alignment.rhs:
        issues.append(ValidationIssue("error", "entity alignment has an empty RHS"))

    if not lhs_variables:
        issues.append(
            ValidationIssue("warning", "LHS is fully ground; the rule matches a single triple only")
        )

    for dependency in alignment.functional_dependencies:
        if dependency.variable not in rhs_variables:
            issues.append(
                ValidationIssue(
                    "error",
                    f"functional dependency target ?{dependency.variable.name} "
                    "does not occur in the RHS",
                )
            )
        if dependency.variable in lhs_variables:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"functional dependency target ?{dependency.variable.name} also occurs "
                    "in the LHS; its matched binding will be overwritten",
                )
            )
        for parameter in dependency.parameter_variables():
            if parameter not in lhs_variables and parameter not in rhs_variables:
                issues.append(
                    ValidationIssue(
                        "error",
                        f"functional dependency parameter ?{parameter.name} occurs nowhere "
                        "in the alignment",
                    )
                )
        if registry is not None and dependency.function not in registry:
            issues.append(
                ValidationIssue(
                    "error",
                    f"function {dependency.function} is not registered with the rewriter",
                )
            )

    fd_targets = {dependency.variable for dependency in alignment.functional_dependencies}
    for variable in sorted(alignment.fresh_rhs_variables(), key=str):
        if variable not in fd_targets:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"RHS variable ?{variable.name} is fresh (not in LHS, no functional "
                    "dependency); it will be renamed at every rule application",
                )
            )
    return issues


def validate_ontology_alignment(
    alignment: OntologyAlignment,
    registry: FunctionRegistry | None = None,
) -> list[ValidationIssue]:
    """Lint an ontology alignment and every entity alignment it contains."""
    issues: list[ValidationIssue] = []
    if not alignment.entity_alignments:
        issues.append(ValidationIssue("warning", "ontology alignment contains no entity alignments"))
    if alignment.target_datasets and alignment.target_ontologies:
        issues.append(
            ValidationIssue(
                "warning",
                "ontology alignment names both target ontologies and target datasets; "
                "dataset-specific use takes precedence during selection",
            )
        )
    duplicates = _duplicate_heads(alignment.entity_alignments)
    for head in duplicates:
        issues.append(
            ValidationIssue(
                "warning",
                f"several entity alignments share the head predicate {head}; the first "
                "matching rule wins during rewriting",
            )
        )
    for index, entity_alignment in enumerate(alignment.entity_alignments):
        for issue in validate_entity_alignment(entity_alignment, registry):
            issues.append(ValidationIssue(issue.severity, f"[EA {index}] {issue.message}"))
    return issues


def _duplicate_heads(alignments: Iterable[EntityAlignment]) -> list[URIRef]:
    seen: dict[URIRef, int] = {}
    for alignment in alignments:
        predicate = alignment.lhs.predicate
        if isinstance(predicate, URIRef):
            seen[predicate] = seen.get(predicate, 0) + 1
    return sorted((uri for uri, count in seen.items() if count > 1), key=str)


# --------------------------------------------------------------------------- #
# Structural comparison modulo variable renaming
# --------------------------------------------------------------------------- #
def rename_variables(alignment: EntityAlignment, prefix: str = "v") -> EntityAlignment:
    """Return a copy with variables canonically renamed ``v0, v1, ...``.

    The renaming follows the order of first occurrence across LHS, RHS and
    functional dependencies, so two alignments that differ only in variable
    names map to identical canonical forms.
    """
    mapping: dict[Variable, Variable] = {}

    def canonical(term: Term) -> Term:
        if isinstance(term, Variable):
            if term not in mapping:
                mapping[term] = Variable(f"{prefix}{len(mapping)}")
            return mapping[term]
        return term

    lhs = alignment.lhs.map_terms(canonical)
    rhs = [pattern.map_terms(canonical) for pattern in alignment.rhs]
    dependencies = [
        FunctionalDependency(
            canonical(dependency.variable),
            dependency.function,
            [canonical(parameter) for parameter in dependency.parameters],
        )
        for dependency in alignment.functional_dependencies
    ]
    return EntityAlignment(lhs, rhs, dependencies, identifier=alignment.identifier)


def structurally_equivalent(left: EntityAlignment, right: EntityAlignment) -> bool:
    """True when the two alignments are equal up to variable renaming."""
    return rename_variables(left) == rename_variables(right)
