"""Data-manipulation functions referenced by functional dependencies.

Section 3.2.2 notes that functions in alignments are identified by URIs so
that "the unique identification of functions across organizations" is
possible, and Section 3.3.1 stresses the *safe assumption* that no function
needs to be known by the system that runs the rewritten query: functions
execute at rewrite time over ground values.

:class:`FunctionRegistry` maps function URIs to Python callables.  A
default registry ships with:

* ``fn:sameas`` — the co-reference wrapper of the paper (requires a
  :class:`~repro.coreference.SameAsService`),
* ``fn:uri-prefix-swap`` — rewrite a URI by swapping a namespace prefix,
* ``fn:concat`` / ``fn:split-first`` / ``fn:split-last`` — string assembly
  and disassembly (address-style repackaging mentioned in Section 3.3.1),
* ``fn:km-to-miles`` / ``fn:miles-to-km`` / ``fn:celsius-to-fahrenheit`` —
  unit-measure conversions (the other example the paper gives),
* ``fn:lowercase`` / ``fn:uppercase`` — trivial normalisations.

All functions follow the same contract: they accept RDF terms (or
variables) and return an RDF term; when the *first* argument is an unbound
variable they return it unchanged, implementing the paper's default
mechanism for unbounded variables.
"""

from __future__ import annotations

from decimal import Decimal
from collections.abc import Callable, Sequence

from ..rdf import ALIGN_FN, Literal, Term, URIRef, Variable, XSD, is_variable_like
from ..coreference import SameAsService

__all__ = [
    "TransformFunction",
    "FunctionRegistry",
    "FunctionNotFound",
    "FunctionExecutionError",
    "SAMEAS_FUNCTION",
    "URI_PREFIX_SWAP_FUNCTION",
    "CONCAT_FUNCTION",
    "SPLIT_FIRST_FUNCTION",
    "SPLIT_LAST_FUNCTION",
    "KM_TO_MILES_FUNCTION",
    "MILES_TO_KM_FUNCTION",
    "CELSIUS_TO_FAHRENHEIT_FUNCTION",
    "LOWERCASE_FUNCTION",
    "UPPERCASE_FUNCTION",
    "default_registry",
]

#: Function URIs (the names used in alignment documents).
SAMEAS_FUNCTION = URIRef("http://ecs.soton.ac.uk/om.owl#sameas")
URI_PREFIX_SWAP_FUNCTION = ALIGN_FN["uri-prefix-swap"]
CONCAT_FUNCTION = ALIGN_FN["concat"]
SPLIT_FIRST_FUNCTION = ALIGN_FN["split-first"]
SPLIT_LAST_FUNCTION = ALIGN_FN["split-last"]
KM_TO_MILES_FUNCTION = ALIGN_FN["km-to-miles"]
MILES_TO_KM_FUNCTION = ALIGN_FN["miles-to-km"]
CELSIUS_TO_FAHRENHEIT_FUNCTION = ALIGN_FN["celsius-to-fahrenheit"]
LOWERCASE_FUNCTION = ALIGN_FN["lowercase"]
UPPERCASE_FUNCTION = ALIGN_FN["uppercase"]

#: Signature of a transform function.
TransformFunction = Callable[..., Term]


class FunctionNotFound(KeyError):
    """Raised when a functional dependency names an unregistered function."""


class FunctionExecutionError(ValueError):
    """Raised when a transform function cannot be applied to its arguments."""


class FunctionRegistry:
    """URI-keyed registry of data-manipulation functions."""

    def __init__(self) -> None:
        self._functions: dict[URIRef, TransformFunction] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every registry mutation.

        Rewrite results depend on which functions are registered (missing
        functions are skipped in non-strict mode), so the mediator's
        rewrite cache keys on this value.
        """
        return self._generation

    def register(self, uri: URIRef, function: TransformFunction) -> None:
        """Register (or replace) the implementation of ``uri``."""
        self._functions[URIRef(str(uri))] = function
        self._generation += 1

    def unregister(self, uri: URIRef) -> None:
        self._functions.pop(URIRef(str(uri)), None)
        self._generation += 1

    def __contains__(self, uri: URIRef) -> bool:
        return URIRef(str(uri)) in self._functions

    def get(self, uri: URIRef) -> TransformFunction:
        """The callable registered for ``uri``; raises :class:`FunctionNotFound`."""
        key = URIRef(str(uri))
        if key not in self._functions:
            raise FunctionNotFound(f"no function registered for {uri}")
        return self._functions[key]

    def call(self, uri: URIRef, arguments: Sequence[Term]) -> Term:
        """Invoke a registered function over RDF-term arguments."""
        function = self.get(uri)
        try:
            return function(*arguments)
        except FunctionExecutionError:
            raise
        except Exception as exc:  # pragma: no cover - defensive wrapper
            raise FunctionExecutionError(f"function {uri} failed: {exc}") from exc

    def registered_functions(self) -> list[URIRef]:
        return sorted(self._functions, key=str)

    def __len__(self) -> int:
        return len(self._functions)


# --------------------------------------------------------------------------- #
# Built-in functions
# --------------------------------------------------------------------------- #
def make_sameas(service: SameAsService, strict: bool = False) -> TransformFunction:
    """Build the paper's ``sameas(x, regex)`` function over a local service.

    ``sameas`` returns its first argument unchanged when it is an unbound
    variable; otherwise it returns the member of the owl:sameAs equivalence
    class of the argument that matches the regular expression.  With
    ``strict=False`` (the default, matching the deployed system) a URI with
    no matching equivalent is returned unchanged, producing an
    unsatisfiable — but harmless — pattern on the target endpoint.
    """

    def sameas(value: Term, pattern: Term) -> Term:
        if is_variable_like(value):
            return value
        if not isinstance(value, URIRef):
            raise FunctionExecutionError(f"sameas expects a URI, got {value!r}")
        regex = _text(pattern)
        if strict:
            return service.lookup_strict(value, regex)
        return service.translate_or_keep(value, regex)

    return sameas


def uri_prefix_swap(value: Term, source_prefix: Term, target_prefix: Term) -> Term:
    """Rewrite ``value`` by replacing ``source_prefix`` with ``target_prefix``.

    A purely syntactic fallback useful when two datasets mint URIs from the
    same local identifiers (no co-reference service required).
    """
    if is_variable_like(value):
        return value
    if not isinstance(value, URIRef):
        raise FunctionExecutionError(f"uri-prefix-swap expects a URI, got {value!r}")
    source = _text(source_prefix)
    target = _text(target_prefix)
    text = str(value)
    if not text.startswith(source):
        return value
    return URIRef(target + text[len(source):])


def concat(*arguments: Term) -> Term:
    """Concatenate literal/URI lexical forms into one plain literal."""
    if arguments and is_variable_like(arguments[0]):
        return arguments[0]
    return Literal("".join(_text(argument) for argument in arguments))


def split_first(value: Term, separator: Term) -> Term:
    """The part of a literal before the first occurrence of ``separator``."""
    if is_variable_like(value):
        return value
    return Literal(_text(value).split(_text(separator), 1)[0])


def split_last(value: Term, separator: Term) -> Term:
    """The part of a literal after the last occurrence of ``separator``."""
    if is_variable_like(value):
        return value
    return Literal(_text(value).rsplit(_text(separator), 1)[-1])


def km_to_miles(value: Term) -> Term:
    """Convert a numeric literal from kilometres to miles."""
    return _numeric_transform(value, lambda x: x * 0.621371)


def miles_to_km(value: Term) -> Term:
    """Convert a numeric literal from miles to kilometres."""
    return _numeric_transform(value, lambda x: x / 0.621371)


def celsius_to_fahrenheit(value: Term) -> Term:
    """Convert a numeric literal from Celsius to Fahrenheit."""
    return _numeric_transform(value, lambda x: x * 9.0 / 5.0 + 32.0)


def lowercase(value: Term) -> Term:
    """Lower-case a literal's lexical form."""
    if is_variable_like(value):
        return value
    return Literal(_text(value).lower())


def uppercase(value: Term) -> Term:
    """Upper-case a literal's lexical form."""
    if is_variable_like(value):
        return value
    return Literal(_text(value).upper())


def _numeric_transform(value: Term, transform: Callable[[float], float]) -> Term:
    if is_variable_like(value):
        return value
    if not isinstance(value, Literal):
        raise FunctionExecutionError(f"numeric conversion expects a literal, got {value!r}")
    python_value = value.to_python()
    if isinstance(python_value, Decimal):
        python_value = float(python_value)
    if not isinstance(python_value, (int, float)) or isinstance(python_value, bool):
        raise FunctionExecutionError(f"not a numeric literal: {value!r}")
    return Literal(round(transform(float(python_value)), 6), datatype=XSD.double)


def _text(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, URIRef):
        return str(term)
    if isinstance(term, Variable):
        raise FunctionExecutionError(f"variable {term.n3()} used where a ground value is required")
    return str(term)


def default_registry(sameas_service: SameAsService | None = None) -> FunctionRegistry:
    """A registry with every built-in function installed.

    ``sameas`` is only available when a co-reference service is supplied
    (it has no meaningful default behaviour without one).
    """
    registry = FunctionRegistry()
    if sameas_service is not None:
        registry.register(SAMEAS_FUNCTION, make_sameas(sameas_service))
    registry.register(URI_PREFIX_SWAP_FUNCTION, uri_prefix_swap)
    registry.register(CONCAT_FUNCTION, concat)
    registry.register(SPLIT_FIRST_FUNCTION, split_first)
    registry.register(SPLIT_LAST_FUNCTION, split_last)
    registry.register(KM_TO_MILES_FUNCTION, km_to_miles)
    registry.register(MILES_TO_KM_FUNCTION, miles_to_km)
    registry.register(CELSIUS_TO_FAHRENHEIT_FUNCTION, celsius_to_fahrenheit)
    registry.register(LOWERCASE_FUNCTION, lowercase)
    registry.register(UPPERCASE_FUNCTION, uppercase)
    return registry
