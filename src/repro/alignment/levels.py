"""Alignment expressivity levels and convenience builders.

Section 3.2.2 classifies (after Euzenat's alignment API) the alignments the
formalism can express:

* **Level 0** — one-to-one correspondences between named entities:
  class-to-class and property-to-property equivalences.
* **Level 1** — an entity mapped to a set/intersection of entities (e.g.
  ``wine1:Burgundy -> wine2:Wine AND goods:BurgundyRegionProduct``);
  representable as long as no OWL construct such as ``owl:unionOf`` is
  required.
* **Level 2** — correspondences between graph *expressions* (e.g. a class
  translated into a value partition: ``O1:WhiteWine -> O2:Wine with
  O2:has_color "White"``).

This module provides builders for the common shapes and a classifier used
by Experiment E8 and the alignment statistics of the store.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..rdf import RDF, Term, Triple, URIRef, Variable
from .model import EntityAlignment, FunctionalDependency

__all__ = [
    "class_alignment",
    "property_alignment",
    "class_to_intersection_alignment",
    "class_to_value_partition_alignment",
    "property_chain_alignment",
    "classify_level",
]

_X = Variable("x")
_Y = Variable("y")


def class_alignment(source_class: URIRef, target_class: URIRef,
                    identifier: URIRef | None = None) -> EntityAlignment:
    """Level-0 class correspondence ``C1 -> C2``.

    Encodes ``forall x (Triple(x, rdf:type, C1) -> Triple(x, rdf:type, C2))``.
    """
    return EntityAlignment(
        lhs=Triple(_X, RDF.type, source_class),
        rhs=[Triple(_X, RDF.type, target_class)],
        identifier=identifier,
    )


def property_alignment(source_property: URIRef, target_property: URIRef,
                       identifier: URIRef | None = None,
                       functional_dependencies: Sequence[FunctionalDependency] = ()) -> EntityAlignment:
    """Level-0 property correspondence ``P1 -> P2``.

    Encodes ``forall x, y (Triple(x, P1, y) -> Triple(x, P2, y))``; optional
    functional dependencies may adjust the subject/object values (e.g. URI
    translation through ``sameas``).
    """
    return EntityAlignment(
        lhs=Triple(_X, source_property, _Y),
        rhs=[Triple(_X, target_property, _Y)],
        functional_dependencies=functional_dependencies,
        identifier=identifier,
    )


def class_to_intersection_alignment(source_class: URIRef,
                                    target_classes: Iterable[URIRef],
                                    identifier: URIRef | None = None) -> EntityAlignment:
    """Level-1 correspondence mapping a class to an intersection of classes.

    The paper's example: ``wine1:Burgundy -> wine2:Wine AND
    goods:BurgundyRegionProduct``.
    """
    target_classes = list(target_classes)
    if not target_classes:
        raise ValueError("at least one target class is required")
    return EntityAlignment(
        lhs=Triple(_X, RDF.type, source_class),
        rhs=[Triple(_X, RDF.type, target) for target in target_classes],
        identifier=identifier,
    )


def class_to_value_partition_alignment(source_class: URIRef, target_class: URIRef,
                                       partition_property: URIRef, partition_value: Term,
                                       identifier: URIRef | None = None) -> EntityAlignment:
    """Level-2 correspondence translating a class into a value partition.

    The paper's example: ``O1:WhiteWine -> O2:Wine with O2:has_color "White"``.
    """
    return EntityAlignment(
        lhs=Triple(_X, RDF.type, source_class),
        rhs=[
            Triple(_X, RDF.type, target_class),
            Triple(_X, partition_property, partition_value),
        ],
        identifier=identifier,
    )


def property_chain_alignment(source_property: URIRef,
                             chain: Sequence[URIRef],
                             identifier: URIRef | None = None,
                             functional_dependencies: Sequence[FunctionalDependency] = ()) -> EntityAlignment:
    """Level-2 correspondence expanding a property into a chain of properties.

    The worked example's shape: ``akt:has-author`` becomes
    ``kisti:CreatorInfo / kisti:hasCreator`` through an intermediate node.
    Intermediate variables are named ``?cN`` and are fresh in the RHS.
    """
    if not chain:
        raise ValueError("the property chain must contain at least one property")
    subject = _X
    rhs: list[Triple] = []
    current: Term = subject
    for index, property_uri in enumerate(chain):
        is_last = index == len(chain) - 1
        target: Term = _Y if is_last else Variable(f"c{index + 1}")
        rhs.append(Triple(current, property_uri, target))
        current = target
    return EntityAlignment(
        lhs=Triple(subject, source_property, _Y),
        rhs=rhs,
        functional_dependencies=functional_dependencies,
        identifier=identifier,
    )


def classify_level(alignment: EntityAlignment) -> int:
    """Classify an entity alignment into expressivity level 0, 1 or 2.

    * level 0 — single RHS triple with the same structural shape as the LHS
      (entity-to-entity renaming),
    * level 1 — several RHS triples, all sharing the LHS subject variable
      and using only ``rdf:type``-style memberships (entity to set of
      entities),
    * level 2 — anything else (graph expressions: chains, value partitions,
      alignments introducing fresh intermediate variables or literals).
    """
    lhs = alignment.lhs
    if len(alignment.rhs) == 1:
        rhs = alignment.rhs[0]
        same_subject = rhs.subject == lhs.subject
        same_object = rhs.object == lhs.object
        if same_subject and same_object:
            return 0
        if lhs.predicate == RDF.type and rhs.predicate == RDF.type and same_subject:
            return 0
    if alignment.fresh_rhs_variables():
        return 2
    if lhs.predicate == RDF.type and all(
        pattern.predicate == RDF.type and pattern.subject == lhs.subject
        for pattern in alignment.rhs
    ):
        return 1
    if all(
        pattern.subject == lhs.subject and pattern.variables() <= lhs.variables()
        for pattern in alignment.rhs
    ):
        # Multiple patterns over the LHS variables only, at least one of
        # which introduces a ground value: a value-partition style level 2
        # unless it is a pure membership expansion (handled above).
        if len(alignment.rhs) > 1:
            return 2
        return 1
    return 2
