"""The alignment model of Section 3.2.

* :class:`FunctionalDependency` — ``var = function(t1, ..., tn)`` where the
  parameters are ground terms or variables of the LHS and ``var`` is a
  variable of the RHS.
* :class:`EntityAlignment` — ``EA = <LHS, RHS, FD>``: a single-triple head,
  a conjunctive body and a set of functional dependencies.  Directional.
* :class:`OntologyAlignment` — ``OA = <SO, TO, TD, EA>``: the context of
  validity (source ontologies, target ontologies, target datasets) plus the
  entity alignments it contains.

Blank nodes in LHS/RHS patterns are interpreted as variables (the paper's
existential reading); the constructors normalise them to
:class:`~repro.rdf.Variable` so the matching machinery only ever deals with
variables and ground terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..rdf import BNode, Term, Triple, URIRef, Variable, is_ground

__all__ = ["FunctionalDependency", "EntityAlignment", "OntologyAlignment", "AlignmentError"]


class AlignmentError(ValueError):
    """Raised when an alignment violates the well-formedness rules."""


def _normalise_term(term: Term) -> Term:
    """Interpret blank nodes as variables (existential reading)."""
    if isinstance(term, BNode):
        return term.to_variable()
    return term


def _normalise_triple(triple: Triple) -> Triple:
    return triple.map_terms(_normalise_term)


@dataclass(frozen=True)
class FunctionalDependency:
    """``variable = function(parameters...)``.

    ``variable`` is the RHS variable receiving the computed value,
    ``function`` is the URI identifying the data-manipulation function and
    ``parameters`` are ground terms or LHS variables.
    """

    variable: Variable
    function: URIRef
    parameters: tuple[Term, ...]

    def __init__(self, variable: Variable | BNode, function: URIRef,
                 parameters: Sequence[Term]) -> None:
        normalised_variable = _normalise_term(variable)
        if not isinstance(normalised_variable, Variable):
            raise AlignmentError(
                f"functional dependency target must be a variable, got {variable!r}"
            )
        if not isinstance(function, URIRef):
            raise AlignmentError(f"function must be identified by a URI, got {function!r}")
        object.__setattr__(self, "variable", normalised_variable)
        object.__setattr__(self, "function", function)
        object.__setattr__(
            self, "parameters", tuple(_normalise_term(parameter) for parameter in parameters)
        )

    def parameter_variables(self) -> set[Variable]:
        """The variables among the parameters."""
        return {parameter for parameter in self.parameters if isinstance(parameter, Variable)}

    def is_ground(self) -> bool:
        """True when every parameter is a ground term."""
        return all(is_ground(parameter) for parameter in self.parameters)

    def __str__(self) -> str:
        args = ", ".join(p.n3() for p in self.parameters)
        return f"?{self.variable.name} = <{self.function}>({args})"


class EntityAlignment:
    """A directional rewriting rule for one triple pattern.

    Parameters
    ----------
    lhs:
        The head: a single triple pattern over the source vocabulary.
    rhs:
        The body: one or more triple patterns over the target vocabulary.
    functional_dependencies:
        Equality constraints ``var = f(params)`` executed at rewrite time.
    identifier:
        Optional URI naming the alignment (e.g. ``akt2kisti:creator_info``).
    """

    def __init__(
        self,
        lhs: Triple,
        rhs: Iterable[Triple],
        functional_dependencies: Iterable[FunctionalDependency] = (),
        identifier: URIRef | None = None,
    ) -> None:
        self.lhs: Triple = _normalise_triple(lhs)
        self.rhs: list[Triple] = [_normalise_triple(pattern) for pattern in rhs]
        self.functional_dependencies: list[FunctionalDependency] = list(functional_dependencies)
        self.identifier = identifier
        self._validate()

    # ------------------------------------------------------------------ #
    # Well-formedness (the structural constraints of Section 3.2.2)
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.rhs:
            raise AlignmentError("entity alignment requires a non-empty RHS")
        lhs_variables = self.lhs_variables()
        rhs_variables = self.rhs_variables()
        for dependency in self.functional_dependencies:
            if dependency.variable not in rhs_variables and dependency.variable not in lhs_variables:
                raise AlignmentError(
                    f"functional dependency targets unknown variable ?{dependency.variable.name}"
                )
            for parameter in dependency.parameter_variables():
                if parameter not in lhs_variables and parameter not in rhs_variables:
                    raise AlignmentError(
                        f"functional dependency parameter ?{parameter.name} "
                        "does not occur in the alignment"
                    )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def lhs_variables(self) -> set[Variable]:
        """Variables of the head (universally quantified in the paper's reading)."""
        return self.lhs.variables()

    def rhs_variables(self) -> set[Variable]:
        """Variables of the body (existentially quantified unless shared)."""
        variables: set[Variable] = set()
        for pattern in self.rhs:
            variables |= pattern.variables()
        return variables

    def fresh_rhs_variables(self) -> set[Variable]:
        """RHS variables that occur neither in the LHS nor as FD targets.

        These are the variables Algorithm 1 step 4 binds to new fresh
        variables when applying the rule.
        """
        produced = {dependency.variable for dependency in self.functional_dependencies}
        return self.rhs_variables() - self.lhs_variables() - produced

    def functional_dependency_for(self, variable: Variable) -> FunctionalDependency | None:
        """The FD whose target is ``variable``, if any (paper's ``getFD``)."""
        for dependency in self.functional_dependencies:
            if dependency.variable == variable:
                return dependency
        return None

    def source_properties(self) -> set[URIRef]:
        """URIs used in the LHS (for indexing alignments by source vocabulary)."""
        return {term for term in self.lhs if isinstance(term, URIRef)}

    def target_properties(self) -> set[URIRef]:
        """URIs used in the RHS."""
        return {
            term
            for pattern in self.rhs
            for term in pattern
            if isinstance(term, URIRef)
        }

    def is_identity(self) -> bool:
        """True when the alignment maps its head onto itself."""
        return len(self.rhs) == 1 and self.rhs[0] == self.lhs and not self.functional_dependencies

    # ------------------------------------------------------------------ #
    # Value semantics
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityAlignment):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and set(self.functional_dependencies) == set(other.functional_dependencies)
        )

    def __hash__(self) -> int:
        return hash((self.lhs, tuple(self.rhs), frozenset(self.functional_dependencies)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = str(self.identifier) if self.identifier else "anonymous"
        return f"<EntityAlignment {name}: {self.lhs.n3()} -> {len(self.rhs)} patterns>"

    def describe(self) -> str:
        """Multi-line human-readable description (used by the CLI)."""
        lines = [f"LHS: {self.lhs.n3()}"]
        lines.extend(f"RHS: {pattern.n3()}" for pattern in self.rhs)
        lines.extend(f"FD:  {dependency}" for dependency in self.functional_dependencies)
        return "\n".join(lines)


class OntologyAlignment:
    """``OA = <SO, TO, TD, EA>`` — entity alignments plus their validity context.

    ``SO``/``TO`` are sets of ontology URIs, ``TD`` a set of dataset URIs;
    together they state for which source vocabulary and which target
    (ontology or specific dataset) the entity alignments may be used.
    """

    def __init__(
        self,
        source_ontologies: Iterable[URIRef],
        target_ontologies: Iterable[URIRef] = (),
        target_datasets: Iterable[URIRef] = (),
        entity_alignments: Iterable[EntityAlignment] = (),
        identifier: URIRef | None = None,
    ) -> None:
        self.source_ontologies: frozenset[URIRef] = frozenset(source_ontologies)
        self.target_ontologies: frozenset[URIRef] = frozenset(target_ontologies)
        self.target_datasets: frozenset[URIRef] = frozenset(target_datasets)
        self.entity_alignments: list[EntityAlignment] = list(entity_alignments)
        self.identifier = identifier
        if not self.source_ontologies:
            raise AlignmentError("an ontology alignment requires at least one source ontology")
        if not self.target_ontologies and not self.target_datasets:
            raise AlignmentError(
                "an ontology alignment requires a target ontology or a target dataset"
            )

    # ------------------------------------------------------------------ #
    # Context of validity
    # ------------------------------------------------------------------ #
    def applies_to_source(self, ontology: URIRef) -> bool:
        """True when queries over ``ontology`` can be rewritten by this OA."""
        return ontology in self.source_ontologies

    def applies_to_target_dataset(self, dataset: URIRef) -> bool:
        """True when this OA may be used to target ``dataset``.

        An OA that names explicit target datasets is *local* to them; an OA
        that only names target ontologies is reusable for any dataset
        adopting those ontologies (Section 3.2.1).
        """
        if self.target_datasets:
            return dataset in self.target_datasets
        return False

    def applies_to_target_ontology(self, ontology: URIRef) -> bool:
        return ontology in self.target_ontologies

    def is_dataset_specific(self) -> bool:
        """True when the alignment is pinned to specific target datasets."""
        return bool(self.target_datasets)

    # ------------------------------------------------------------------ #
    # Content
    # ------------------------------------------------------------------ #
    def add(self, entity_alignment: EntityAlignment) -> OntologyAlignment:
        self.entity_alignments.append(entity_alignment)
        return self

    def __len__(self) -> int:
        return len(self.entity_alignments)

    def __iter__(self):
        return iter(self.entity_alignments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = str(self.identifier) if self.identifier else "anonymous"
        return (
            f"<OntologyAlignment {name}: {len(self.entity_alignments)} entity alignments, "
            f"SO={sorted(map(str, self.source_ontologies))}, "
            f"TO={sorted(map(str, self.target_ontologies))}, "
            f"TD={sorted(map(str, self.target_datasets))}>"
        )
