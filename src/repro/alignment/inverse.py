"""Inverting entity alignments.

The alignments of the paper are *directional* ("the alignments so defined
are directional (i.e. not symmetric)").  In practice a mediator often needs
both directions — e.g. the deployed system aligned AKT→KISTI, but a KISTI
user may want to query the RKB repositories.  For a useful subset of the
formalism the inverse can be computed mechanically:

* **invertible**: alignments whose RHS is a single triple and whose
  functional dependencies are all ``sameas`` lookups (the co-reference
  relation is symmetric, so the inverse simply swaps the URI-space pattern);
* **not invertible**: multi-triple RHS bodies (the inverse head would need
  to match a conjunction, which the formalism's single-triple LHS cannot
  express) and non-``sameas`` functions (``km-to-miles`` has an inverse, but
  the registry has no general way to know it).

:func:`invert_entity_alignment` performs the safe cases and raises
:class:`AlignmentInversionError` otherwise; :func:`invert_ontology_alignment`
inverts an OA rule-by-rule, skipping (and reporting) the non-invertible
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..rdf import Literal, URIRef
from .functions import SAMEAS_FUNCTION
from .model import EntityAlignment, FunctionalDependency, OntologyAlignment

__all__ = [
    "AlignmentInversionError",
    "invert_entity_alignment",
    "invert_ontology_alignment",
    "InversionReport",
]


class AlignmentInversionError(ValueError):
    """Raised when an entity alignment has no mechanical inverse."""


def invert_entity_alignment(
    alignment: EntityAlignment,
    source_uri_pattern: str | None = None,
) -> EntityAlignment:
    """Return the target→source version of a single-triple alignment.

    ``source_uri_pattern`` is the URI-space regular expression of the
    *original source* dataset; it replaces the pattern argument of every
    inverted ``sameas`` dependency (lookups now need to land in the source
    URI space).  When omitted, the original pattern is kept — correct only
    if both datasets share a URI space.
    """
    if len(alignment.rhs) != 1:
        raise AlignmentInversionError(
            "only alignments with a single RHS pattern can be inverted "
            f"(this one has {len(alignment.rhs)})"
        )
    for dependency in alignment.functional_dependencies:
        if dependency.function != SAMEAS_FUNCTION:
            raise AlignmentInversionError(
                f"functional dependency over {dependency.function} is not invertible"
            )

    new_lhs = alignment.rhs[0]
    new_rhs = [alignment.lhs]

    inverted_dependencies: list[FunctionalDependency] = []
    for dependency in alignment.functional_dependencies:
        variable_parameters = [p for p in dependency.parameters if not isinstance(p, (URIRef, Literal))]
        if not variable_parameters:
            raise AlignmentInversionError(
                "sameas dependency without a variable parameter cannot be inverted"
            )
        original_source = variable_parameters[0]
        pattern: Literal
        if source_uri_pattern is not None:
            pattern = Literal(source_uri_pattern)
        else:
            literals = [p for p in dependency.parameters if isinstance(p, Literal)]
            pattern = literals[0] if literals else Literal(".*")
        # ?target = sameas(?source, re_target)  becomes
        # ?source = sameas(?target, re_source)
        inverted_dependencies.append(
            FunctionalDependency(original_source, SAMEAS_FUNCTION,
                                 [dependency.variable, pattern])
        )

    identifier = None
    if alignment.identifier is not None:
        identifier = URIRef(str(alignment.identifier) + "-inverse")
    return EntityAlignment(new_lhs, new_rhs, inverted_dependencies, identifier=identifier)


@dataclass
class InversionReport:
    """Outcome of inverting a whole ontology alignment."""

    inverted: list[EntityAlignment] = field(default_factory=list)
    skipped: list[tuple[EntityAlignment, str]] = field(default_factory=list)

    @property
    def inverted_count(self) -> int:
        return len(self.inverted)

    @property
    def skipped_count(self) -> int:
        return len(self.skipped)


def invert_ontology_alignment(
    alignment: OntologyAlignment,
    source_dataset: URIRef | None = None,
    source_uri_pattern: str | None = None,
) -> tuple[OntologyAlignment, InversionReport]:
    """Invert an OA rule-by-rule (skipping non-invertible entity alignments).

    The context of validity is swapped: the original target ontologies
    become the source ontologies and vice versa; ``source_dataset`` (the
    original source repository, now the *target* of the inverted OA) becomes
    the target dataset when given.
    """
    report = InversionReport()
    for entity_alignment in alignment.entity_alignments:
        try:
            report.inverted.append(
                invert_entity_alignment(entity_alignment, source_uri_pattern)
            )
        except AlignmentInversionError as exc:
            report.skipped.append((entity_alignment, str(exc)))

    if not alignment.target_ontologies:
        raise AlignmentInversionError(
            "cannot invert an ontology alignment that names no target ontologies"
        )
    identifier = None
    if alignment.identifier is not None:
        identifier = URIRef(str(alignment.identifier) + "-inverse")
    inverted = OntologyAlignment(
        source_ontologies=alignment.target_ontologies,
        target_ontologies=alignment.source_ontologies,
        target_datasets=[source_dataset] if source_dataset is not None else [],
        entity_alignments=report.inverted,
        identifier=identifier,
    )
    return inverted, report
