"""Alignment model of Correndo et al. (Section 3.2).

Exports the entity/ontology alignment classes, the functional-dependency
function registry, the RDF (reification) encoding, expressivity-level
builders and the alignment knowledge base used by the mediator.
"""

from .functions import (
    CELSIUS_TO_FAHRENHEIT_FUNCTION,
    CONCAT_FUNCTION,
    FunctionExecutionError,
    FunctionNotFound,
    FunctionRegistry,
    KM_TO_MILES_FUNCTION,
    LOWERCASE_FUNCTION,
    MILES_TO_KM_FUNCTION,
    SAMEAS_FUNCTION,
    SPLIT_FIRST_FUNCTION,
    SPLIT_LAST_FUNCTION,
    UPPERCASE_FUNCTION,
    URI_PREFIX_SWAP_FUNCTION,
    default_registry,
    make_sameas,
)
from .levels import (
    class_alignment,
    class_to_intersection_alignment,
    class_to_value_partition_alignment,
    classify_level,
    property_alignment,
    property_chain_alignment,
)
from .inverse import (
    AlignmentInversionError,
    InversionReport,
    invert_entity_alignment,
    invert_ontology_alignment,
)
from .model import AlignmentError, EntityAlignment, FunctionalDependency, OntologyAlignment
from .rdf_io import (
    AlignmentGraphReader,
    AlignmentGraphWriter,
    alignments_from_graph,
    alignments_from_turtle,
    alignments_to_graph,
    alignments_to_turtle,
    ontology_alignment_to_graph,
    ontology_alignments_from_graph,
)
from .store import AlignmentStore
from .validation import (
    ValidationIssue,
    rename_variables,
    structurally_equivalent,
    validate_entity_alignment,
    validate_ontology_alignment,
)

__all__ = [
    # model
    "EntityAlignment", "FunctionalDependency", "OntologyAlignment", "AlignmentError",
    # inversion
    "AlignmentInversionError", "InversionReport",
    "invert_entity_alignment", "invert_ontology_alignment",
    # functions
    "FunctionRegistry", "FunctionNotFound", "FunctionExecutionError",
    "default_registry", "make_sameas",
    "SAMEAS_FUNCTION", "URI_PREFIX_SWAP_FUNCTION", "CONCAT_FUNCTION",
    "SPLIT_FIRST_FUNCTION", "SPLIT_LAST_FUNCTION", "KM_TO_MILES_FUNCTION",
    "MILES_TO_KM_FUNCTION", "CELSIUS_TO_FAHRENHEIT_FUNCTION",
    "LOWERCASE_FUNCTION", "UPPERCASE_FUNCTION",
    # levels
    "class_alignment", "property_alignment", "class_to_intersection_alignment",
    "class_to_value_partition_alignment", "property_chain_alignment", "classify_level",
    # RDF I/O
    "AlignmentGraphWriter", "AlignmentGraphReader",
    "alignments_to_graph", "alignments_from_graph",
    "ontology_alignment_to_graph", "ontology_alignments_from_graph",
    "alignments_to_turtle", "alignments_from_turtle",
    # store
    "AlignmentStore",
    # validation
    "ValidationIssue", "validate_entity_alignment", "validate_ontology_alignment",
    "rename_variables", "structurally_equivalent",
]
