"""RDF representation of alignments (the encoding of Section 3.2.2).

The paper stores alignments in an RDF knowledge base; triple patterns are
described with statement reification and functional-dependency parameters
with RDF collections.  The Turtle listing of Section 3.2.2 uses the
vocabulary reproduced here::

    akt2kisti:creator_info
        a map:EntityAlignment ;
        map:lhs  [ a rdf:Statement ; rdf:subject _:p1 ;
                   rdf:predicate akt:has-author ; rdf:object _:a1 ] ;
        map:rhs  [ a rdf:Statement ; ... ] ;
        map:hasFunctionalDependency
                 [ a rdf:Statement ; rdf:subject _:a2 ;
                   rdf:predicate map:sameas ;
                   rdf:object ( _:a1 "http://kisti.rkbexplorer.com/id/\\S*" ) ] .

Ontology alignments (``OA = <SO, TO, TD, EA>``) add ``map:OntologyAlignment``
with ``map:sourceOntology`` / ``map:targetOntology`` / ``map:targetDataset``
and ``map:hasEntityAlignment`` arcs.

Variables appear as blank nodes in the RDF form; reading converts them back
to variables.  When several alignments share one document their blank node
labels are prefixed so distinct rules never accidentally share a variable.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..rdf import (
    BNode,
    Graph,
    MAP,
    RDF,
    Term,
    Triple,
    URIRef,
    Variable,
    build_list,
    fresh_bnode,
    read_list,
    reify,
)
from ..turtle import parse_turtle, serialize_turtle
from .model import AlignmentError, EntityAlignment, FunctionalDependency, OntologyAlignment

__all__ = [
    "AlignmentGraphWriter",
    "AlignmentGraphReader",
    "alignments_to_graph",
    "alignments_from_graph",
    "ontology_alignment_to_graph",
    "ontology_alignments_from_graph",
    "alignments_to_turtle",
    "alignments_from_turtle",
]

#: Vocabulary terms (``map:`` namespace of the paper).
ENTITY_ALIGNMENT_CLASS = MAP.EntityAlignment
ONTOLOGY_ALIGNMENT_CLASS = MAP.OntologyAlignment
LHS_PROPERTY = MAP.lhs
RHS_PROPERTY = MAP.rhs
FD_PROPERTY = MAP.hasFunctionalDependency
SOURCE_ONTOLOGY_PROPERTY = MAP.sourceOntology
TARGET_ONTOLOGY_PROPERTY = MAP.targetOntology
TARGET_DATASET_PROPERTY = MAP.targetDataset
HAS_ENTITY_ALIGNMENT_PROPERTY = MAP.hasEntityAlignment


# --------------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------------- #
class AlignmentGraphWriter:
    """Serialise alignments into an RDF graph using the paper's encoding."""

    def __init__(self, graph: Graph | None = None) -> None:
        self.graph = graph if graph is not None else Graph()
        self._alignment_counter = 0

    # -- entity alignments ---------------------------------------------------- #
    def add_entity_alignment(self, alignment: EntityAlignment) -> Term:
        """Write one entity alignment; returns its node in the graph."""
        self._alignment_counter += 1
        scope = f"ea{self._alignment_counter}"
        node: Term = alignment.identifier if alignment.identifier is not None else fresh_bnode("align")
        self.graph.add(Triple(node, RDF.type, ENTITY_ALIGNMENT_CLASS))

        lhs_node = self._write_pattern(alignment.lhs, scope)
        self.graph.add(Triple(node, LHS_PROPERTY, lhs_node))
        for pattern in alignment.rhs:
            rhs_node = self._write_pattern(pattern, scope)
            self.graph.add(Triple(node, RHS_PROPERTY, rhs_node))
        for dependency in alignment.functional_dependencies:
            fd_node = self._write_functional_dependency(dependency, scope)
            self.graph.add(Triple(node, FD_PROPERTY, fd_node))
        return node

    def _write_pattern(self, pattern: Triple, scope: str) -> Term:
        reified = pattern.map_terms(lambda term: self._variable_to_bnode(term, scope))
        return reify(self.graph, reified)

    def _write_functional_dependency(self, dependency: FunctionalDependency, scope: str) -> Term:
        node = fresh_bnode("fd")
        self.graph.add(Triple(node, RDF.type, RDF.Statement))
        self.graph.add(
            Triple(node, RDF.subject, self._variable_to_bnode(dependency.variable, scope))
        )
        self.graph.add(Triple(node, RDF.predicate, dependency.function))
        parameters = [
            self._variable_to_bnode(parameter, scope) for parameter in dependency.parameters
        ]
        head = build_list(self.graph, parameters)
        self.graph.add(Triple(node, RDF.object, head))
        return node

    @staticmethod
    def _variable_to_bnode(term: Term, scope: str) -> Term:
        if isinstance(term, Variable):
            return BNode(f"{scope}_{term.name}")
        return term

    # -- ontology alignments --------------------------------------------------- #
    def add_ontology_alignment(self, alignment: OntologyAlignment) -> Term:
        """Write an ontology alignment (context + contained entity alignments)."""
        node: Term = alignment.identifier if alignment.identifier is not None else fresh_bnode("oa")
        self.graph.add(Triple(node, RDF.type, ONTOLOGY_ALIGNMENT_CLASS))
        for source in sorted(alignment.source_ontologies, key=str):
            self.graph.add(Triple(node, SOURCE_ONTOLOGY_PROPERTY, source))
        for target in sorted(alignment.target_ontologies, key=str):
            self.graph.add(Triple(node, TARGET_ONTOLOGY_PROPERTY, target))
        for dataset in sorted(alignment.target_datasets, key=str):
            self.graph.add(Triple(node, TARGET_DATASET_PROPERTY, dataset))
        for entity_alignment in alignment.entity_alignments:
            ea_node = self.add_entity_alignment(entity_alignment)
            self.graph.add(Triple(node, HAS_ENTITY_ALIGNMENT_PROPERTY, ea_node))
        return node


# --------------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------------- #
class AlignmentGraphReader:
    """Reconstruct alignments from their RDF description."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # -- entity alignments ---------------------------------------------------- #
    def entity_alignment_nodes(self) -> list[Term]:
        return sorted(
            self.graph.subjects(RDF.type, ENTITY_ALIGNMENT_CLASS), key=lambda t: t.sort_key()
        )

    def read_entity_alignment(self, node: Term) -> EntityAlignment:
        lhs_nodes = list(self.graph.objects(node, LHS_PROPERTY))
        if len(lhs_nodes) != 1:
            raise AlignmentError(f"entity alignment {node} must have exactly one map:lhs")
        lhs = self._read_pattern(lhs_nodes[0])

        rhs = [
            self._read_pattern(rhs_node)
            for rhs_node in sorted(self.graph.objects(node, RHS_PROPERTY), key=lambda t: t.sort_key())
        ]
        dependencies = [
            self._read_functional_dependency(fd_node)
            for fd_node in sorted(self.graph.objects(node, FD_PROPERTY), key=lambda t: t.sort_key())
        ]
        identifier = node if isinstance(node, URIRef) else None
        return EntityAlignment(lhs, rhs, dependencies, identifier=identifier)

    def read_all_entity_alignments(self) -> list[EntityAlignment]:
        return [self.read_entity_alignment(node) for node in self.entity_alignment_nodes()]

    def _read_pattern(self, node: Term) -> Triple:
        subject = self._single(node, RDF.subject)
        predicate = self._single(node, RDF.predicate)
        obj = self._single(node, RDF.object)
        return Triple(
            self._bnode_to_variable(subject),
            self._bnode_to_variable(predicate),
            self._bnode_to_variable(obj),
        )

    def _read_functional_dependency(self, node: Term) -> FunctionalDependency:
        target = self._single(node, RDF.subject)
        function = self._single(node, RDF.predicate)
        if not isinstance(function, URIRef):
            raise AlignmentError(f"functional dependency {node} must name a function URI")
        parameters_head = self._single(node, RDF.object)
        parameters = [
            self._bnode_to_variable(parameter)
            for parameter in read_list(self.graph, parameters_head)
        ]
        return FunctionalDependency(self._bnode_to_variable(target), function, parameters)

    def _single(self, node: Term, predicate: URIRef) -> Term:
        values = list(self.graph.objects(node, predicate))
        if len(values) != 1:
            raise AlignmentError(
                f"node {node} must carry exactly one {predicate}, found {len(values)}"
            )
        return values[0]

    @staticmethod
    def _bnode_to_variable(term: Term) -> Term:
        if isinstance(term, BNode):
            return term.to_variable()
        return term

    # -- ontology alignments --------------------------------------------------- #
    def ontology_alignment_nodes(self) -> list[Term]:
        return sorted(
            self.graph.subjects(RDF.type, ONTOLOGY_ALIGNMENT_CLASS), key=lambda t: t.sort_key()
        )

    def read_ontology_alignment(self, node: Term) -> OntologyAlignment:
        sources = [t for t in self.graph.objects(node, SOURCE_ONTOLOGY_PROPERTY)]
        targets = [t for t in self.graph.objects(node, TARGET_ONTOLOGY_PROPERTY)]
        datasets = [t for t in self.graph.objects(node, TARGET_DATASET_PROPERTY)]
        entity_alignments = [
            self.read_entity_alignment(ea_node)
            for ea_node in sorted(
                self.graph.objects(node, HAS_ENTITY_ALIGNMENT_PROPERTY), key=lambda t: t.sort_key()
            )
        ]
        identifier = node if isinstance(node, URIRef) else None
        return OntologyAlignment(
            source_ontologies=sources,
            target_ontologies=targets,
            target_datasets=datasets,
            entity_alignments=entity_alignments,
            identifier=identifier,
        )

    def read_all_ontology_alignments(self) -> list[OntologyAlignment]:
        return [self.read_ontology_alignment(node) for node in self.ontology_alignment_nodes()]


# --------------------------------------------------------------------------- #
# Convenience functions
# --------------------------------------------------------------------------- #
def alignments_to_graph(alignments: Iterable[EntityAlignment]) -> Graph:
    """Serialise entity alignments into a fresh RDF graph."""
    writer = AlignmentGraphWriter()
    for alignment in alignments:
        writer.add_entity_alignment(alignment)
    return writer.graph


def alignments_from_graph(graph: Graph) -> list[EntityAlignment]:
    """Read every entity alignment described in ``graph``."""
    return AlignmentGraphReader(graph).read_all_entity_alignments()


def ontology_alignment_to_graph(alignment: OntologyAlignment) -> Graph:
    """Serialise one ontology alignment (with its entity alignments)."""
    writer = AlignmentGraphWriter()
    writer.add_ontology_alignment(alignment)
    return writer.graph


def ontology_alignments_from_graph(graph: Graph) -> list[OntologyAlignment]:
    """Read every ontology alignment described in ``graph``."""
    return AlignmentGraphReader(graph).read_all_ontology_alignments()


def alignments_to_turtle(alignments: Iterable[EntityAlignment]) -> str:
    """Entity alignments as a Turtle document (the paper's exchange format)."""
    return serialize_turtle(alignments_to_graph(alignments))


def alignments_from_turtle(text: str) -> list[EntityAlignment]:
    """Parse a Turtle document containing entity alignment descriptions."""
    return alignments_from_graph(parse_turtle(text))
