"""Alignment knowledge base (the mediator's *Alignment KB* of Figure 5).

The store holds :class:`OntologyAlignment` objects and answers the
selection question of Section 3.2.1: *"Querying the alignment server we can
retrieve all the relevant ontology alignments for integrating two given
data sets.  The union of the entity alignments belonging to the relevant
ontology alignments can then be used in order to rewrite queries between
the data sets."*

Selection therefore works on the context of validity:

* by **target dataset** — alignments explicitly scoped to that dataset
  (``TD``) are preferred; alignments scoped only to the dataset's
  ontologies (``TO``) are used as reusable fallbacks,
* by **source ontology** — only alignments whose ``SO`` covers the
  vocabularies of the incoming query are returned.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from ..rdf import Graph, URIRef
from .model import EntityAlignment, OntologyAlignment
from .rdf_io import AlignmentGraphWriter, ontology_alignments_from_graph

__all__ = ["AlignmentStore"]


class AlignmentStore:
    """In-memory registry of ontology alignments with context-aware lookup."""

    def __init__(self, alignments: Iterable[OntologyAlignment] = ()) -> None:
        self._alignments: list[OntologyAlignment] = []
        self._generation = 0
        for alignment in alignments:
            self.add(alignment)

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every KB mutation.

        Derived structures (the mediator's compiled rule sets and rewrite
        cache) key their entries on this value, so any :meth:`add` /
        :meth:`load_graph` automatically invalidates them.
        """
        return self._generation

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #
    def add(self, alignment: OntologyAlignment) -> AlignmentStore:
        """Register an ontology alignment."""
        self._alignments.append(alignment)
        self._generation += 1
        return self

    def load_graph(self, graph: Graph) -> int:
        """Import every ontology alignment described in an RDF graph.

        Returns the number of ontology alignments imported.
        """
        imported = ontology_alignments_from_graph(graph)
        for alignment in imported:
            self.add(alignment)
        return len(imported)

    def to_graph(self) -> Graph:
        """Export the whole KB as an RDF graph (the paper's storage format)."""
        writer = AlignmentGraphWriter()
        for alignment in self._alignments:
            writer.add_ontology_alignment(alignment)
        return writer.graph

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def ontology_alignments(self) -> list[OntologyAlignment]:
        """Every registered ontology alignment."""
        return list(self._alignments)

    def for_target_dataset(
        self,
        dataset: URIRef,
        source_ontology: URIRef | None = None,
        dataset_ontologies: Iterable[URIRef] = (),
    ) -> list[OntologyAlignment]:
        """Ontology alignments relevant for rewriting towards ``dataset``.

        Dataset-specific alignments (``TD`` contains the dataset) are
        returned first; ontology-scoped alignments whose ``TO`` intersects
        ``dataset_ontologies`` follow.  When ``source_ontology`` is given,
        alignments not covering it are filtered out.
        """
        dataset_ontologies = set(dataset_ontologies)
        specific: list[OntologyAlignment] = []
        reusable: list[OntologyAlignment] = []
        for alignment in self._alignments:
            if source_ontology is not None and not alignment.applies_to_source(source_ontology):
                continue
            if alignment.applies_to_target_dataset(dataset):
                specific.append(alignment)
            elif dataset_ontologies and (alignment.target_ontologies & dataset_ontologies):
                reusable.append(alignment)
        return specific + reusable

    def for_target_ontology(
        self, ontology: URIRef, source_ontology: URIRef | None = None
    ) -> list[OntologyAlignment]:
        """Ontology alignments whose target ontologies include ``ontology``."""
        result = []
        for alignment in self._alignments:
            if source_ontology is not None and not alignment.applies_to_source(source_ontology):
                continue
            if alignment.applies_to_target_ontology(ontology):
                result.append(alignment)
        return result

    def entity_alignments_for(
        self,
        dataset: URIRef | None = None,
        target_ontology: URIRef | None = None,
        source_ontology: URIRef | None = None,
        dataset_ontologies: Iterable[URIRef] = (),
    ) -> list[EntityAlignment]:
        """The union of entity alignments relevant for a rewriting task.

        This is the set Algorithm 1 receives: "the union of the entity
        alignments belonging to the relevant ontology alignments".
        Duplicate rules (same LHS/RHS/FD) are removed while preserving
        order.
        """
        selected: list[OntologyAlignment] = []
        if dataset is not None:
            selected.extend(
                self.for_target_dataset(dataset, source_ontology, dataset_ontologies)
            )
        if target_ontology is not None:
            selected.extend(self.for_target_ontology(target_ontology, source_ontology))
        if dataset is None and target_ontology is None:
            selected = [
                alignment
                for alignment in self._alignments
                if source_ontology is None or alignment.applies_to_source(source_ontology)
            ]
        merged: list[EntityAlignment] = []
        seen = set()
        for ontology_alignment in selected:
            for entity_alignment in ontology_alignment.entity_alignments:
                key = (entity_alignment.lhs, tuple(entity_alignment.rhs),
                       frozenset(entity_alignment.functional_dependencies))
                if key not in seen:
                    seen.add(key)
                    merged.append(entity_alignment)
        return merged

    # ------------------------------------------------------------------ #
    # Statistics (Section 3.4 reports alignment counts per pair)
    # ------------------------------------------------------------------ #
    def entity_alignment_count(self) -> int:
        """Total number of entity alignments across all OAs."""
        return sum(len(alignment) for alignment in self._alignments)

    def counts_by_pair(self) -> dict[tuple, int]:
        """Entity-alignment counts keyed by (source ontologies, target).

        The *target* component is the target datasets when present, else
        the target ontologies — matching how Section 3.4 reports "42
        alignments between ECS data set and DBpedia" and "24 alignments
        between AKT data and KISTI data set".
        """
        counts: dict[tuple, int] = defaultdict(int)
        for alignment in self._alignments:
            target = alignment.target_datasets or alignment.target_ontologies
            key = (
                tuple(sorted(map(str, alignment.source_ontologies))),
                tuple(sorted(map(str, target))),
            )
            counts[key] += len(alignment)
        return dict(counts)

    def source_ontologies(self) -> set[URIRef]:
        """All source ontologies covered by the KB."""
        result: set[URIRef] = set()
        for alignment in self._alignments:
            result |= alignment.source_ontologies
        return result

    def target_datasets(self) -> set[URIRef]:
        """All target datasets covered by the KB."""
        result: set[URIRef] = set()
        for alignment in self._alignments:
            result |= alignment.target_datasets
        return result

    def __len__(self) -> int:
        return len(self._alignments)

    def __iter__(self):
        return iter(self._alignments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AlignmentStore {len(self._alignments)} ontology alignments, "
            f"{self.entity_alignment_count()} entity alignments>"
        )
