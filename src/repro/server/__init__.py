"""HTTP tier: publish endpoints and federations over the SPARQL Protocol.

This package is the server half of the network subsystem (the client half
is :class:`repro.federation.HttpSparqlEndpoint`): any
:class:`~repro.server.backends.QueryBackend` — a single endpoint or a
whole mediated federation — can be served over real sockets with
:class:`SparqlHttpServer`, making the in-process reproduction deployable
as the service topology of Figure 5.
"""

from .backends import BadQuery, EndpointBackend, FederationBackend, QueryBackend, RejectedQuery
from .http import ResponseCache, SparqlHttpServer

__all__ = [
    "QueryBackend",
    "EndpointBackend",
    "FederationBackend",
    "BadQuery",
    "RejectedQuery",
    "SparqlHttpServer",
    "ResponseCache",
]
