"""Query backends the HTTP server can front.

The SPARQL Protocol handler is transport only; *what* answers a query is a
:class:`QueryBackend`:

* :class:`EndpointBackend` — a single :class:`SparqlEndpoint` (local graph
  or a further remote endpoint being proxied).  SELECT, ASK and CONSTRUCT
  are all supported.
* :class:`FederationBackend` — a :class:`FederatedQueryEngine` or whole
  :class:`MediatorService`: every SELECT is mediated over the registered
  datasets and the merged result set is returned.  This is the deployment
  of Figure 5 — the mediator itself published as one SPARQL endpoint.

Backends also supply the observability payloads (``/health``, ``/metrics``)
and a *generation* number: responses may be cached until the generation
changes (the federation backend ties it to ``AlignmentStore.generation``,
so editing the alignment KB invalidates every cached rewrite-dependent
response).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..rdf import Graph, URIRef
from ..sparql import (
    AskQuery,
    AskResult,
    ConstructQuery,
    Query,
    ResultSet,
    SelectQuery,
    parse_query,
)
from ..federation.endpoint import SparqlEndpoint
from ..federation.federator import FederatedQueryEngine
from ..federation.service import MediatorService

__all__ = ["BadQuery", "RejectedQuery", "QueryBackend", "EndpointBackend", "FederationBackend"]


class BadQuery(ValueError):
    """The request's query is unusable for this backend (HTTP 400)."""


class RejectedQuery(BadQuery):
    """Strict mode refused the query: static analysis found errors.

    Carries the full list of :class:`repro.sparql.analysis.Diagnostic`
    objects so the protocol layer can return them as structured JSON
    alongside the 400.
    """

    def __init__(self, message: str, diagnostics: Sequence) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)

    def to_json_list(self):
        return [d.to_json_dict() for d in self.diagnostics]


QueryResult = ResultSet | AskResult | Graph


class QueryBackend:
    """Abstract backend: executes query text, reports health and metrics."""

    #: Human-readable description served in the service document.
    description: str = "SPARQL endpoint"

    #: Strict mode: refuse queries whose static analysis finds
    #: error-severity diagnostics (HTTP 400 with a structured JSON body).
    strict: bool = False

    def _analyze_static(self, query: Query):
        """Run the static analyzer; in strict mode errors reject the query."""
        from ..sparql.analysis import analyze_query

        analysis = analyze_query(query)
        if self.strict and analysis.has_errors:
            raise RejectedQuery(
                "query rejected by static analysis "
                f"({len(analysis.errors)} error(s))",
                analysis.diagnostics,
            )
        return analysis

    @staticmethod
    def _attach_diagnostics(result, analysis):
        """Hand the analyzer's findings to results that can carry them."""
        if analysis is not None and getattr(result, "diagnostics", None) == []:
            result.diagnostics = list(analysis.diagnostics)
        return result

    def execute(self, query_text: str) -> QueryResult:
        raise NotImplementedError

    def analyze(self, query_text: str):
        """EXPLAIN ANALYZE: ``(result, run event)`` for ``query_text``.

        Backends whose underlying engine has no batched instrumentation
        raise :class:`BadQuery` (HTTP 400 at the protocol layer).
        """
        raise BadQuery("this backend does not support EXPLAIN ANALYZE")

    def health(self) -> dict[str, object]:
        """JSON-ready health payload; must contain a ``status`` key."""
        return {"status": "ok"}

    def metrics(self) -> dict[str, object]:
        """JSON-ready metrics payload (per-endpoint statistics)."""
        return {}

    @property
    def generation(self) -> int:
        """Cache epoch: cached responses are valid while this is stable."""
        return 0

    @staticmethod
    def _parse(query_text: str) -> Query:
        from ..sparql import SparqlParseError

        try:
            return parse_query(query_text)
        except SparqlParseError as exc:
            raise BadQuery(f"malformed query: {exc}") from exc


class EndpointBackend(QueryBackend):
    """Serve one :class:`SparqlEndpoint` (SELECT/ASK/CONSTRUCT)."""

    def __init__(
        self,
        endpoint: SparqlEndpoint,
        description: str | None = None,
        strict: bool = False,
    ) -> None:
        self.endpoint = endpoint
        self.description = description or f"SPARQL endpoint for {endpoint.uri}"
        self.strict = strict

    def execute(self, query_text: str) -> QueryResult:
        query = self._parse(query_text)
        analysis = self._analyze_static(query)
        if isinstance(query, SelectQuery):
            return self._attach_diagnostics(self.endpoint.select(query), analysis)
        if isinstance(query, AskQuery):
            return self._attach_diagnostics(self.endpoint.ask(query), analysis)
        if isinstance(query, ConstructQuery):
            return self.endpoint.construct(query)
        raise BadQuery(f"unsupported query form: {type(query).__name__}")

    def analyze(self, query_text: str):
        query = self._parse(query_text)
        analyze = getattr(self.endpoint, "analyze", None)
        if analyze is None:
            raise BadQuery("this endpoint does not support EXPLAIN ANALYZE")
        return analyze(query)

    def health(self) -> dict[str, object]:
        available = bool(getattr(self.endpoint, "available", True))
        payload: dict[str, object] = {
            "status": "ok" if available else "unavailable",
            "endpoint": str(self.endpoint.uri),
        }
        triple_count = getattr(self.endpoint, "triple_count", None)
        if callable(triple_count):
            payload["triples"] = triple_count()
        return payload

    def metrics(self) -> dict[str, object]:
        statistics = getattr(self.endpoint, "statistics", None)
        if statistics is None:
            return {}
        return {str(self.endpoint.uri): statistics.as_dict()}

    @property
    def generation(self) -> int:
        # Tie the cache epoch to the served graph's mutation counter so a
        # data change invalidates cached responses; endpoints without a
        # graph view (remote proxies) fall back to the static epoch.
        graph = getattr(self.endpoint, "graph", None)
        return getattr(graph, "version", 0)


class FederationBackend(QueryBackend):
    """Serve a whole federation: every SELECT is mediated and merged.

    Accepts either a :class:`FederatedQueryEngine` or a
    :class:`MediatorService` (whose engine is used).  ``source_ontology`` /
    ``source_dataset`` / ``mode`` / ``datasets`` are fixed at construction:
    they describe *this* published endpoint's mediation setup, exactly like
    the deployed mediator's configuration page.
    """

    def __init__(
        self,
        engine: FederatedQueryEngine | MediatorService,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        description: str | None = None,
        strategy: str | None = None,
        strict: bool = False,
    ) -> None:
        if isinstance(engine, MediatorService):
            engine = engine.federation
        self.engine = engine
        self.source_ontology = source_ontology
        self.source_dataset = source_dataset
        self.mode = mode
        self.datasets = list(datasets) if datasets is not None else None
        self.strategy = strategy
        self.strict = strict
        self.description = description or (
            f"mediated federation over {len(self.engine.registry)} datasets"
            + (f" (strategy {strategy})" if strategy else "")
        )

    def execute(self, query_text: str) -> QueryResult:
        query = self._parse(query_text)
        analysis = self._analyze_static(query)
        if not isinstance(query, SelectQuery):
            raise BadQuery(
                "the federated endpoint answers SELECT queries only "
                f"(got {type(query).__name__})"
            )
        outcome = self.engine.execute(
            query,
            source_ontology=self.source_ontology,
            source_dataset=self.source_dataset,
            mode=self.mode,
            datasets=self.datasets,
            strategy=self.strategy,
        )
        merged = outcome.merged()
        # The decompose strategy sees local + federation diagnostics;
        # fall back to the local analysis for plain fan-out.
        merged.diagnostics = list(outcome.diagnostics) or list(analysis.diagnostics)
        return merged

    def analyze(self, query_text: str):
        query = self._parse(query_text)
        if not isinstance(query, SelectQuery):
            raise BadQuery(
                "the federated endpoint answers SELECT queries only "
                f"(got {type(query).__name__})"
            )
        outcome, event = self.engine.analyze(
            query,
            source_ontology=self.source_ontology,
            source_dataset=self.source_dataset,
            mode=self.mode,
            datasets=self.datasets,
            strategy=self.strategy,
        )
        return outcome.merged(), event

    def health(self) -> dict[str, object]:
        datasets = {
            str(uri): entry.as_dict()
            for uri, entry in self.engine.registry.health().items()
        }
        degraded = any(entry["state"] != "closed" for entry in datasets.values())
        return {
            "status": "degraded" if degraded else "ok",
            "datasets": datasets,
        }

    def metrics(self) -> dict[str, object]:
        from ..obs.metrics import abandoned_attempts_gauge

        gauge = abandoned_attempts_gauge()
        payload: dict[str, object] = {}
        for dataset in self.engine.registry:
            statistics = getattr(dataset.endpoint, "statistics", None)
            if statistics is not None:
                entry = statistics.as_dict()
                entry["abandoned_attempts"] = int(gauge.value(dataset=str(dataset.uri)))
                payload[str(dataset.uri)] = entry
        return payload

    @property
    def generation(self) -> int:
        # Merged answers depend on the alignment KB via the mediator's
        # rewrites; bumping the store's generation invalidates the cache.
        return self.engine.mediator.alignment_store.generation
