"""W3C SPARQL 1.1 Protocol server on the stdlib HTTP stack.

:class:`SparqlHttpServer` publishes a :class:`QueryBackend` over real
sockets using ``http.server.ThreadingHTTPServer`` — no runtime
dependencies beyond the standard library.  The protocol surface:

* ``GET /sparql?query=…`` — the protocol's query-via-GET binding,
* ``POST /sparql`` — ``application/x-www-form-urlencoded`` (``query=``
  parameter) or a raw ``application/sparql-query`` body,
* content negotiation on ``Accept``: SELECT results as SPARQL JSON
  (default), XML, CSV or TSV; ASK as JSON/XML; CONSTRUCT as Turtle or
  N-Triples,
* ``GET``/``POST /analyze`` — EXPLAIN ANALYZE: executes the query and
  returns the structured run event (per-operator rows/batches/timings,
  endpoints contacted) as JSON, never cached,
* ``GET /health`` — backend health (circuit-breaker states for a
  federation backend),
* ``GET /metrics`` — per-endpoint :class:`EndpointStatistics` plus server
  counters (requests, errors, cache hits/misses) as JSON, or the
  Prometheus text exposition when the ``Accept`` header prefers
  ``text/plain`` (or ``?format=prometheus``),
* ``GET /`` — a small JSON service description.

Successful query responses are cached in an LRU keyed by
``(backend.generation, query text, format)``; the federation backend's
generation is ``AlignmentStore.generation``, so editing the alignment KB
invalidates every cached response whose rewrite could have changed.

Error mapping mirrors the client side: unusable requests → 400, an
unacceptable ``Accept`` → 406, unsupported media type → 415, backend
endpoint failures → 503, backend timeouts → 504.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


from ..federation.endpoint import EndpointError, EndpointTimeout, EndpointUnavailable
from ..obs.export import SINK
from ..obs.metrics import REGISTRY, MetricsRegistry
from ..obs.slowlog import SLOW_LOG
from ..obs.trace import get_tracer
from ..rdf import Graph
from ..sparql import AskResult, ResultSet, TermSerializationError
from ..sparql.formats import (
    ASK_MEDIA_TYPES,
    GRAPH_MEDIA_TYPES,
    RESULT_MEDIA_TYPES,
    negotiate,
    negotiate_graph,
    write_graph,
    write_results,
)
from .backends import BadQuery, QueryBackend, RejectedQuery

__all__ = ["SparqlHttpServer", "ResponseCache"]

#: Upper bound for request bodies (1 MiB is generous for a SPARQL query).
_MAX_BODY_BYTES = 1 << 20


class ResponseCache:
    """Thread-safe LRU of rendered protocol responses.

    Keys embed the backend generation, so a generation bump makes every
    older entry unreachable; the LRU then ages those entries out.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max(0, max_entries)
        self._entries: OrderedDict[tuple, tuple[str, bytes]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> tuple[str, bytes] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, content_type: str, body: bytes) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = (content_type, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}


class _HttpError(Exception):
    """Internal: abort request handling with a protocol error response.

    ``payload`` switches the error body from plain text to JSON (used by
    strict mode to ship structured analyzer diagnostics with the 400).
    """

    def __init__(
        self, status: int, message: str, payload: dict[str, object] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.payload = payload


class _SparqlHttpd(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared server state.

    Each server instance owns a private :class:`MetricsRegistry`, so two
    loopback servers in one process (a federation test) keep independent
    request counters; process-wide metrics (abandoned attempts, rewrite
    cache) live in the global registry and are concatenated into the
    Prometheus exposition.
    """

    daemon_threads = True
    allow_reuse_address = True

    backend: QueryBackend
    cache: ResponseCache
    registry: MetricsRegistry
    quiet: bool

    def handle_error(self, request, client_address) -> None:
        # A client abandoning its socket mid-response (timeout, Ctrl-C) is
        # normal operation for a server, not a stack-trace-worthy bug.
        import sys

        exc = sys.exception()
        if isinstance(exc, (ConnectionError, BrokenPipeError, TimeoutError)):
            return
        if not self.quiet:  # pragma: no cover - diagnostic path
            super().handle_error(request, client_address)


class _SparqlRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-sparql/0.2"
    server: _SparqlHttpd

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._handle("POST")

    def _handle(self, method: str) -> None:
        """Count, trace and time one request, then route it.

        The request span joins the caller's trace when the request carries
        a W3C ``traceparent`` header (a federated sub-query issued by
        :class:`~repro.federation.http_endpoint.HttpSparqlEndpoint`), and
        starts a fresh trace otherwise.
        """
        self._count("requests")
        parsed = urllib.parse.urlsplit(self.path)
        started = time.perf_counter()
        span = get_tracer().start_span(
            "http.server.request",
            {"method": method, "path": parsed.path, "layer": "http"},
            traceparent=self.headers.get("traceparent"),
        )
        with span:
            try:
                if method == "GET":
                    self._route_get(parsed)
                else:
                    self._route_post(parsed)
            except _HttpError as error:
                if span.recording:
                    span.set_attribute("status", error.status)
                self._send_error(error)
        if parsed.path in ("/sparql", "/query", "/analyze"):
            self.server.registry.histogram(
                "repro_http_request_seconds",
                "Query request latency in seconds by handler",
                labels=("handler",),
            ).observe(time.perf_counter() - started, handler=parsed.path.lstrip("/"))

    def _route_get(self, parsed: urllib.parse.SplitResult) -> None:
        if parsed.path in ("/sparql", "/query"):
            parameters = urllib.parse.parse_qs(parsed.query)
            queries = parameters.get("query")
            if not queries:
                raise _HttpError(400, "missing required 'query' parameter")
            self._answer_query(queries[0])
        elif parsed.path == "/analyze":
            parameters = urllib.parse.parse_qs(parsed.query)
            queries = parameters.get("query")
            if not queries:
                raise _HttpError(400, "missing required 'query' parameter")
            self._answer_analyze(queries[0])
        elif parsed.path == "/health":
            self._send_json(200, self._health_payload())
        elif parsed.path == "/metrics":
            self._answer_metrics()
        elif parsed.path == "/":
            self._send_json(200, self._service_payload())
        else:
            raise _HttpError(404, f"no such resource: {parsed.path}")

    def _route_post(self, parsed: urllib.parse.SplitResult) -> None:
        if parsed.path == "/analyze":
            self._answer_analyze(self._read_query_body())
        elif parsed.path in ("/sparql", "/query"):
            self._answer_query(self._read_query_body())
        else:
            raise _HttpError(404, f"no such resource: {parsed.path}")

    # ------------------------------------------------------------------ #
    # The protocol's query operation
    # ------------------------------------------------------------------ #
    def _read_query_body(self) -> str:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip().lower()
        if content_type in ("", "application/x-www-form-urlencoded"):
            parameters = urllib.parse.parse_qs(body)
            queries = parameters.get("query")
            if not queries:
                raise _HttpError(400, "missing required 'query' parameter")
            return queries[0]
        if content_type == "application/sparql-query":
            if not body.strip():
                raise _HttpError(400, "empty query body")
            return body
        raise _HttpError(415, f"unsupported request media type: {content_type}")

    def _answer_query(self, query_text: str) -> None:
        backend = self.server.backend
        accept = self.headers.get("Accept")
        generation = backend.generation
        self._count("queries")

        # A cached response is only reusable when the *rendered* document
        # would be identical, so the cache key needs the negotiated format.
        # Negotiation needs the result kind (SELECT and CONSTRUCT accept
        # different media types), which the already-rendered cache entry
        # remembers: probe every format family before executing.
        cached = self._cache_lookup(generation, query_text, accept)
        if cached is not None:
            content_type, body = cached
            self._send(200, content_type, body)
            return

        # 5xx responses are counted once, in _send_error.
        started = time.perf_counter()
        try:
            result = backend.execute(query_text)
        except RejectedQuery as exc:
            raise _HttpError(
                400, str(exc),
                payload={"error": str(exc), "diagnostics": exc.to_json_list()},
            ) from exc
        except BadQuery as exc:
            raise _HttpError(400, str(exc)) from exc
        except EndpointTimeout as exc:
            raise _HttpError(504, str(exc)) from exc
        except EndpointUnavailable as exc:
            raise _HttpError(503, str(exc)) from exc
        except EndpointError as exc:
            # The backend reached its upstream but got garbage back
            # (e.g. a proxied endpoint returning a malformed document).
            raise _HttpError(502, str(exc)) from exc
        except TermSerializationError as exc:
            raise _HttpError(500, str(exc)) from exc
        except Exception as exc:  # noqa: BLE001
            # A server must answer even when the backend has a bug —
            # dropping the socket would surface as a transport failure on
            # the client and mis-train its circuit breaker.
            raise _HttpError(500, f"internal error: {type(exc).__name__}: {exc}") from exc

        format_name, content_type, text = self._render(result, accept)
        elapsed = time.perf_counter() - started
        if elapsed >= SLOW_LOG.threshold:
            span = get_tracer().current_span()
            SLOW_LOG.record(
                query=query_text,
                elapsed=elapsed,
                engine=backend.description,
                layer="http",
                trace_id=span.trace_id if span is not None and span.recording else None,
            )
        body = text.encode("utf-8")
        self.server.cache.put((generation, query_text, format_name), content_type, body)
        self._send(200, content_type, body)

    def _answer_analyze(self, query_text: str) -> None:
        """EXPLAIN ANALYZE resource: executes, returns the run event as JSON.

        Never cached — the whole point is fresh per-operator timings.
        """
        backend = self.server.backend
        self._count("queries")
        try:
            result, event = backend.analyze(query_text)
        except RejectedQuery as exc:
            raise _HttpError(
                400, str(exc),
                payload={"error": str(exc), "diagnostics": exc.to_json_list()},
            ) from exc
        except BadQuery as exc:
            raise _HttpError(400, str(exc)) from exc
        except EndpointTimeout as exc:
            raise _HttpError(504, str(exc)) from exc
        except EndpointUnavailable as exc:
            raise _HttpError(503, str(exc)) from exc
        except EndpointError as exc:
            raise _HttpError(502, str(exc)) from exc
        except Exception as exc:  # noqa: BLE001
            raise _HttpError(500, f"internal error: {type(exc).__name__}: {exc}") from exc
        payload: dict[str, object] = {
            "event": event.to_json_dict(),
            "report": event.render(),
        }
        diagnostics = getattr(result, "diagnostics", None)
        if diagnostics:
            payload["diagnostics"] = [d.to_json_dict() for d in diagnostics]
        if isinstance(result, ResultSet):
            payload["rows"] = len(result)
        elif isinstance(result, AskResult):
            payload["boolean"] = bool(result)
        elif isinstance(result, Graph):
            payload["triples"] = len(result)
        self._send_json(200, payload)

    def _cache_lookup(
        self, generation: int, query_text: str, accept: str | None
    ) -> tuple[str, bytes] | None:
        for name in self._candidate_formats(accept):
            entry = self.server.cache.get((generation, query_text, name))
            if entry is not None:
                return entry
        return None

    @staticmethod
    def _candidate_formats(accept: str | None) -> tuple[str, ...]:
        """Formats this Accept header could negotiate to, most specific first."""
        candidates = []
        result_format = negotiate(accept)
        if result_format is not None:
            candidates.append(result_format)
        graph_format = negotiate_graph(accept)
        if graph_format is not None:
            candidates.append(graph_format)
        return tuple(candidates)

    def _render(self, result, accept: str | None) -> tuple[str, str, str]:
        """(format name, content type, document) for a backend result."""
        if isinstance(result, Graph):
            format_name = negotiate_graph(accept)
            if format_name is None:
                raise _HttpError(406, self._not_acceptable(accept, GRAPH_MEDIA_TYPES))
            return format_name, GRAPH_MEDIA_TYPES[format_name], write_graph(result, format_name)
        if isinstance(result, AskResult):
            format_name = negotiate(accept, allowed=tuple(ASK_MEDIA_TYPES))
            if format_name is None:
                raise _HttpError(406, self._not_acceptable(accept, ASK_MEDIA_TYPES))
            return format_name, ASK_MEDIA_TYPES[format_name], write_results(result, format_name)
        if isinstance(result, ResultSet):
            format_name = negotiate(accept)
            if format_name is None:
                raise _HttpError(406, self._not_acceptable(accept, RESULT_MEDIA_TYPES))
            return format_name, RESULT_MEDIA_TYPES[format_name], write_results(result, format_name)
        raise _HttpError(500, f"backend produced an unservable result: {type(result).__name__}")

    @staticmethod
    def _not_acceptable(accept: str | None, supported: dict[str, str]) -> str:
        return (
            f"no supported media type in Accept: {accept!r}; "
            f"supported: {', '.join(sorted(supported.values()))}"
        )

    # ------------------------------------------------------------------ #
    # Observability resources
    # ------------------------------------------------------------------ #
    def _health_payload(self) -> dict[str, object]:
        payload = self.server.backend.health()
        payload.setdefault("status", "ok")
        return payload

    def _answer_metrics(self) -> None:
        """``/metrics``: JSON by default, Prometheus text when asked.

        An ``Accept`` header preferring ``text/plain`` (what a Prometheus
        scraper sends) or a ``?format=prometheus`` query parameter selects
        the text exposition; everything else keeps the original JSON
        payload.
        """
        parsed = urllib.parse.urlsplit(self.path)
        parameters = urllib.parse.parse_qs(parsed.query)
        accept = (self.headers.get("Accept") or "").lower()
        wants_text = (
            "prometheus" in parameters.get("format", [])
            or "text/plain" in accept
            or "openmetrics" in accept
        )
        if wants_text:
            body = self.server.registry.render_prometheus() + REGISTRY.render_prometheus()
            self._send(200, "text/plain; version=0.0.4", body.encode("utf-8"))
        else:
            self._send_json(200, self._metrics_payload())

    def _metrics_payload(self) -> dict[str, object]:
        """The backward-compatible JSON metrics document.

        Each constituent (registry counters, cache info, backend metrics)
        snapshots consistently under its own lock, and the payload carries
        the backend generation it was sampled at, so a reader can detect
        that the alignment KB changed between two scrapes instead of
        puzzling over counters that moved independently.
        """
        registry = self.server.registry
        counters = {
            key: int(self._counter(key).value())
            for key in ("requests", "queries", "errors")
        }
        latency = registry.histogram(
            "repro_http_request_seconds",
            "Query request latency in seconds by handler",
            labels=("handler",),
        )
        payload: dict[str, object] = {
            "server": {**counters, "cache": self.server.cache.info()},
            "endpoints": self.server.backend.metrics(),
            "generation": self.server.backend.generation,
            "latency": {
                "sparql": latency.snapshot(handler="sparql"),
                "analyze": latency.snapshot(handler="analyze"),
            },
            "slowlog": SLOW_LOG.as_dict(),
        }
        return payload

    def _service_payload(self) -> dict[str, object]:
        return {
            "service": "repro SPARQL Protocol server",
            "description": self.server.backend.description,
            "query": "/sparql",
            "analyze": "/analyze",
            "health": "/health",
            "metrics": "/metrics",
            "result_formats": sorted(set(RESULT_MEDIA_TYPES.values())),
            "graph_formats": sorted(set(GRAPH_MEDIA_TYPES.values())),
        }

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, "application/json", body)

    def _send_error(self, error: _HttpError) -> None:
        if error.status >= 500:
            self._count("errors")
        if error.payload is not None:
            content_type = "application/json"
            body = (json.dumps(error.payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        else:
            content_type = "text/plain"
            body = (error.message + "\n").encode("utf-8")
        self.send_response(error.status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    _COUNTER_HELP = {
        "requests": "HTTP requests received",
        "queries": "SPARQL protocol query operations",
        "errors": "Responses with status >= 500",
    }

    def _counter(self, key: str):
        return self.server.registry.counter(
            f"repro_http_{key}_total", self._COUNTER_HELP.get(key, key)
        )

    def _count(self, key: str) -> None:
        self._counter(key).inc()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)


class SparqlHttpServer:
    """Lifecycle wrapper: bind, serve in a background thread, stop.

    >>> server = SparqlHttpServer(EndpointBackend(endpoint)).start()
    >>> server.query_url
    'http://127.0.0.1:49152/sparql'
    >>> server.stop()

    ``port=0`` binds an ephemeral port (the default — loopback federation
    tests run many servers side by side).  Also usable as a context
    manager, and :meth:`serve_forever` blocks for CLI use.
    """

    def __init__(
        self,
        backend: QueryBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 128,
        quiet: bool = True,
    ) -> None:
        self.backend = backend
        self._httpd = _SparqlHttpd((host, port), _SparqlRequestHandler)
        self._httpd.backend = backend
        self._httpd.cache = ResponseCache(cache_size)
        self._httpd.registry = MetricsRegistry()
        self._httpd.quiet = quiet
        self._thread: threading.Thread | None = None
        # Server construction is a configuration point: pick up any change
        # to REPRO_RUN_EVENTS made since the last refresh.
        SINK.refresh()

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def query_url(self) -> str:
        """The SPARQL Protocol query resource."""
        return f"{self.url}/sparql"

    @property
    def cache(self) -> ResponseCache:
        return self._httpd.cache

    # ------------------------------------------------------------------ #
    def start(self) -> SparqlHttpServer:
        """Serve in a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        # The short poll interval keeps stop() prompt (shutdown() blocks
        # until serve_forever notices the flag on its next poll).
        self._thread = threading.Thread(
            target=lambda: self._httpd.serve_forever(poll_interval=0.05),
            name=f"sparql-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks; Ctrl-C to stop)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> SparqlHttpServer:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SparqlHttpServer {self.url} ({self.backend.description})>"
