"""Data translation with generated CONSTRUCT queries and alignment inversion.

Two extensions of the paper's machinery, both flagged in its own discussion:

* Section 2 mentions Euzenat et al.'s idea of using SPARQL CONSTRUCT for
  data translation, and notes that *generating* those queries from declared
  alignments was an open issue — :class:`repro.core.DataTranslator` does
  exactly that: each entity alignment becomes a CONSTRUCT query (LHS as the
  WHERE clause, RHS as the template), and the owl:sameAs post-processing
  re-mints instance URIs into the target URI space.
* The alignments are directional; :func:`repro.alignment.invert_ontology_alignment`
  mechanically inverts the invertible rules so queries can also be mediated
  in the opposite direction.

Run with::

    python examples/data_translation.py
"""

from repro.alignment import default_registry, invert_ontology_alignment
from repro.core import DataTranslator, QueryRewriter
from repro.coreference import SameAsService
from repro.datasets import (
    AktDatasetBuilder,
    KistiDatasetBuilder,
    KISTI_URI_PATTERN,
    RKB_DATASET_URI,
    RKB_URI_PATTERN,
    WorldModel,
    akt_to_kisti_alignment,
)
from repro.sparql import QueryEvaluator, parse_query
from repro.turtle import serialize_turtle


def main() -> None:
    # A small world published in the AKT vocabulary (the source data).
    world = WorldModel(n_persons=8, n_papers=10, n_projects=2, n_organizations=2, seed=17)
    akt_builder = AktDatasetBuilder(world)
    kisti_builder = KistiDatasetBuilder(world, coverage=1.0)
    source_graph = akt_builder.build()

    # owl:sameAs links between the two URI spaces.
    sameas = SameAsService()
    for person in world.persons:
        sameas.add_equivalence(akt_builder.person_uri(person.key),
                               kisti_builder.person_uri(person.key))
    for paper in world.papers:
        sameas.add_equivalence(akt_builder.paper_uri(paper.key),
                               kisti_builder.paper_uri(paper.key))

    alignment_kb = akt_to_kisti_alignment()

    # ------------------------------------------------------------------ #
    # 1. Data translation: AKT data -> KISTI vocabulary via CONSTRUCT.
    # ------------------------------------------------------------------ #
    translator = DataTranslator(list(alignment_kb), sameas, KISTI_URI_PATTERN,
                                prefixes={"akt": "http://www.aktors.org/ontology/portal#",
                                          "kisti": "http://www.kisti.re.kr/isrl/ResearchRefOntology#"})
    print("=== One of the generated CONSTRUCT queries (the has-author chain) ===")
    chain_query = next(text for text in translator.query_texts() if "hasCreatorInfo" in text)
    print(chain_query)

    translated = translator.translate(source_graph)
    print(f"Source graph (AKT vocabulary):      {len(source_graph)} triples")
    print(f"Translated graph (KISTI vocabulary): {len(translated)} triples")

    # The translated data answers KISTI-vocabulary queries directly.
    rows = QueryEvaluator(translated).select("""
        PREFIX kisti:<http://www.kisti.re.kr/isrl/ResearchRefOntology#>
        SELECT ?paper ?author WHERE {
          ?paper kisti:hasCreatorInfo ?c . ?c kisti:hasCreator ?author .
        }
    """)
    print(f"Authorship statements visible through the KISTI modelling: {len(rows)}")
    print()

    # ------------------------------------------------------------------ #
    # 2. Inverting the alignment KB: KISTI-vocabulary queries -> AKT.
    # ------------------------------------------------------------------ #
    inverted, report = invert_ontology_alignment(
        alignment_kb, source_dataset=RKB_DATASET_URI, source_uri_pattern=RKB_URI_PATTERN
    )
    print("=== Inverted alignment KB (KISTI -> AKT) ===")
    print(f"invertible rules: {report.inverted_count}, skipped: {report.skipped_count} "
          "(the CreatorInfo chain has no single-triple inverse)")

    kisti_query = """
        PREFIX kisti:<http://www.kisti.re.kr/isrl/ResearchRefOntology#>
        SELECT ?r ?name WHERE { ?r a kisti:Researcher . ?r kisti:name ?name }
    """
    rewriter = QueryRewriter(list(inverted), default_registry(sameas))
    rewritten, _ = rewriter.rewrite(parse_query(kisti_query))
    print("A KISTI-vocabulary query rewritten for the AKT repository:")
    print(rewritten.serialize())
    result = QueryEvaluator(source_graph).select(rewritten)
    print(f"Rows retrieved from the AKT repository: {len(result)}")


if __name__ == "__main__":
    main()
