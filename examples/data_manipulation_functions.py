"""Data-manipulation functions beyond ``sameas``.

Section 3.3.1 notes that "data manipulation functions can come handy in
many occasions when integrating heterogeneous data sets.  Information can
be represented and aggregated in different ways across the semantic web
(e.g. different unit measures can be adopted or properties like address can
be represented all in one value or alternatively each information encoded
separately)".

This example builds two tiny repositories that disagree exactly like that —
one stores distances in kilometres and full names in one literal, the other
expects miles and split names — and uses alignments whose functional
dependencies perform the conversions at rewrite time, so the rewritten
query carries ready-to-match literals and the target endpoint needs no
function support at all (the paper's "safe assumption").

Run with::

    python examples/data_manipulation_functions.py
"""

from repro.alignment import (
    EntityAlignment,
    FunctionalDependency,
    KM_TO_MILES_FUNCTION,
    SPLIT_LAST_FUNCTION,
    default_registry,
)
from repro.core import QueryRewriter
from repro.rdf import Graph, Literal, Namespace, Triple, Variable, XSD
from repro.sparql import QueryEvaluator, parse_query

SRC = Namespace("http://example.org/source#")
TGT = Namespace("http://example.org/target#")


def build_target_data() -> Graph:
    """The target repository: distances in miles, family names split out."""
    graph = Graph()
    graph.namespace_manager.bind("tgt", TGT)
    graph.add(Triple(TGT["route-1"], TGT.lengthMiles, Literal(62.1371, datatype=XSD.double)))
    graph.add(Triple(TGT["route-2"], TGT.lengthMiles, Literal(6.21371, datatype=XSD.double)))
    graph.add(Triple(TGT["person-1"], TGT.familyName, Literal("Shadbolt")))
    graph.add(Triple(TGT["person-2"], TGT.familyName, Literal("Glaser")))
    return graph


def build_alignments() -> list[EntityAlignment]:
    x, y = Variable("x"), Variable("y")
    y2 = Variable("y2")
    return [
        # <?x src:lengthKm ?y>  ->  <?x tgt:lengthMiles ?y2>, ?y2 = km-to-miles(?y)
        EntityAlignment(
            lhs=Triple(x, SRC.lengthKm, y),
            rhs=[Triple(x, TGT.lengthMiles, y2)],
            functional_dependencies=[
                FunctionalDependency(y2, KM_TO_MILES_FUNCTION, [y]),
            ],
        ),
        # <?x src:fullName ?y>  ->  <?x tgt:familyName ?y2>, ?y2 = split-last(?y, " ")
        EntityAlignment(
            lhs=Triple(x, SRC.fullName, y),
            rhs=[Triple(x, TGT.familyName, y2)],
            functional_dependencies=[
                FunctionalDependency(y2, SPLIT_LAST_FUNCTION, [y, Literal(" ")]),
            ],
        ),
    ]


def main() -> None:
    target_graph = build_target_data()
    rewriter = QueryRewriter(build_alignments(), default_registry(),
                             extra_prefixes={"tgt": str(TGT)})

    queries = {
        "routes of exactly 100 km": """
            PREFIX src:<http://example.org/source#>
            SELECT ?route WHERE { ?route src:lengthKm 100.0 . }
        """,
        "who is called 'Nigel Shadbolt'?": """
            PREFIX src:<http://example.org/source#>
            SELECT ?person WHERE { ?person src:fullName "Nigel Shadbolt" . }
        """,
        "lengths of every route (variable object passes through)": """
            PREFIX src:<http://example.org/source#>
            SELECT ?route ?length WHERE { ?route src:lengthKm ?length . }
        """,
    }

    evaluator = QueryEvaluator(target_graph)
    for label, source_query in queries.items():
        rewritten, report = rewriter.rewrite(parse_query(source_query))
        print(f"=== {label} ===")
        print(rewritten.serialize())
        results = evaluator.evaluate(rewritten)
        print(results.to_table())
        print()


if __name__ == "__main__":
    main()
