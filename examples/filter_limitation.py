"""The FILTER limitation of Figure 6 — and how the extensions fix it.

Section 4 explains the main limitation of BGP-level rewriting: the same
constraint can be written inside the graph pattern (Figure 1) or inside a
FILTER (Figure 6), and "part of the information needed for a correct
rewriting [is] put in a part of the query that is not considered by the
algorithm".  The co-author URI mentioned only in the FILTER is never
translated into the KISTI URI space, so the rewritten query returns
nothing useful.

This example runs both phrasings of the query against the synthetic KISTI
endpoint in three modes — the paper's BGP-only rewriter, the FILTER-aware
extension, and the algebra-level rewriter proposed as future work — and
reports how many co-authors each combination retrieves.

Run with::

    python examples/filter_limitation.py
"""

from repro.datasets import build_resist_scenario

SCENARIO_PARAMETERS = dict(n_persons=40, n_papers=100, kisti_coverage=0.9, seed=5)


def figure_1_style(person_uri: str) -> str:
    """Constraint expressed in the BGP (Figure 1)."""
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """


def figure_6_style(person_uri: str) -> str:
    """The same constraint moved into the FILTER section (Figure 6)."""
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author ?n .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>) && (?n = <{person_uri}>))
    }}
    """


def main() -> None:
    scenario = build_resist_scenario(**SCENARIO_PARAMETERS)
    person_key = scenario.world.most_prolific_author()
    person_uri = str(scenario.akt_person_uri(person_key))
    kisti = scenario.kisti_dataset
    service = scenario.service

    queries = {
        "Figure 1 (constraint in BGP)": figure_1_style(person_uri),
        "Figure 6 (constraint in FILTER)": figure_6_style(person_uri),
    }
    modes = ["bgp", "filter-aware", "algebra"]

    print(f"Co-authors of {person_uri}, retrieved from the KISTI endpoint\n")
    header = f"{'query phrasing':38s}" + "".join(f"{mode:>15s}" for mode in modes)
    print(header)
    print("-" * len(header))
    for label, query in queries.items():
        cells = []
        for mode in modes:
            response = service.translate_and_run(
                query, kisti, source_ontology=scenario.source_ontology, mode=mode
            )
            # Count distinct co-author bindings excluding the person themselves
            # (the FILTER only removes them when its URI was translated).
            distinct = {row["a"] for row in response.rows}
            cells.append(f"{len(distinct):>15d}")
        print(f"{label:38s}" + "".join(cells))

    print()
    print("With the BGP-only rewriter the Figure 6 query cannot bind ?n to the")
    print("KISTI URI of the author (the URI only occurs in the FILTER), so it")
    print("returns rows for *every* author pair or none that match the intent;")
    print("the FILTER-aware and algebra rewriters translate the URI and agree")
    print("with the Figure 1 phrasing.")


if __name__ == "__main__":
    main()
