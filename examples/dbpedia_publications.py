"""Translating ECS/AKT publication queries for DBpedia.

Section 3.4 reports that the deployed alignment service held **42
alignments between the ECS data set and DBpedia**.  This example loads the
reconstructed 42-alignment knowledge base, shows how the mediator selects
it when DBpedia is the target, and translates and runs a small suite of
publication-metadata queries through the :class:`MediatorService` facade
(the REST API tier of Figure 5).

Run with::

    python examples/dbpedia_publications.py
"""

from repro.alignment import classify_level
from repro.datasets import build_resist_scenario

QUERIES = {
    "titles of recent articles": """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT ?paper ?title WHERE {
          ?paper a akt:Article-Reference .
          ?paper akt:has-title ?title .
          ?paper akt:has-year ?year .
          FILTER (?year >= 2005)
        }
    """,
    "people and their affiliations": """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT ?person ?org WHERE {
          ?person a akt:Person .
          ?person akt:has-affiliation ?org .
        }
    """,
    "papers per author": """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?author ?paper WHERE {
          ?paper akt:has-author ?author .
          ?paper akt:has-title ?title .
        }
    """,
}


def main() -> None:
    scenario = build_resist_scenario(n_persons=40, n_papers=100, seed=3)
    service = scenario.service

    # Inspect the alignment KB the mediator will use for DBpedia.
    alignments = service.mediator.select_alignments(
        service.mediator.target(scenario.dbpedia_dataset),
        source_ontology=scenario.source_ontology,
    )
    levels = {}
    for alignment in alignments:
        levels[classify_level(alignment)] = levels.get(classify_level(alignment), 0) + 1
    print(f"Alignments selected for DBpedia: {len(alignments)} "
          f"(by expressivity level: {dict(sorted(levels.items()))})")
    print()

    for label, query in QUERIES.items():
        response = service.translate_and_run(query, scenario.dbpedia_dataset,
                                             source_ontology=scenario.source_ontology)
        print(f"=== {label} ===")
        print(response.translation.translated_query)
        print(f"--> {response.row_count} rows from the DBpedia endpoint "
              f"({response.translation.triples_matched} BGP triples rewritten)")
        for row in response.rows[:5]:
            print("   ", row)
        if response.row_count > 5:
            print(f"    ... and {response.row_count - 5} more")
        print()


if __name__ == "__main__":
    main()
