"""Federated co-author retrieval over the ReSIST-style scenario.

The introduction of the paper motivates query rewriting with recall: the
ReSIST data repositories are redundant, so "it is important to query all
the available repositories in order to increase the recall of the
information retrieval task".  This example builds the synthetic
RKB + KISTI + DBpedia scenario, asks the Figure-1 co-author question for
the busiest author, and compares:

* querying the source (RKB) repository only,
* naively sending the same query to every endpoint (no rewriting),
* federating through the mediator with query rewriting.

Run with::

    python examples/coauthor_federation.py
"""

from repro.baselines import IdentityFederation
from repro.datasets import build_resist_scenario
from repro.federation import recall

# Make the source repository hold only part of the world so that the other
# repositories genuinely add information.
SCENARIO_PARAMETERS = dict(
    n_persons=40,
    n_papers=100,
    rkb_coverage=0.55,
    kisti_coverage=0.6,
    dbpedia_coverage=0.35,
    seed=7,
)


def main() -> None:
    scenario = build_resist_scenario(**SCENARIO_PARAMETERS)
    print("Dataset sizes (triples):")
    for uri, size in sorted(scenario.dataset_sizes().items()):
        print(f"  {uri}: {size}")
    print("Alignment KB:", scenario.alignment_store.counts_by_pair())
    print("Co-reference bundles:", scenario.sameas_service.statistics())
    print()

    person_key = scenario.world.most_prolific_author()
    person_uri = scenario.akt_person_uri(person_key)
    gold = scenario.gold_coauthor_uris(person_key)
    query = f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """
    print(f"Looking for co-authors of {person_uri}")
    print(f"Ground truth (world model): {len(gold)} co-authors")
    print()

    # 1. Source repository only.
    rkb_only = scenario.endpoint(scenario.rkb_dataset).select(query)
    rkb_values = rkb_only.distinct_values("a")
    print(f"[RKB only]            {len(rkb_values):3d} found, "
          f"recall {recall(rkb_values, gold):.2f}")

    # 2. No rewriting: the same query shipped to every endpoint.
    identity = IdentityFederation(scenario.registry).execute(query)
    identity_values = identity.distinct_values("a")
    print(f"[No rewriting]        {len(identity_values):3d} found, "
          f"recall {recall(identity_values, gold):.2f} "
          f"(per dataset rows: { {str(k): v for k, v in identity.per_dataset_rows.items()} })")

    # 3. Mediated federation with query rewriting (+ FILTER translation).
    federated = scenario.service.federate(
        query,
        source_ontology=scenario.source_ontology,
        source_dataset=scenario.rkb_dataset,
        mode="filter-aware",
    )
    federated_values = federated.distinct_values("a")
    print(f"[Rewriting federation] {len(federated_values):3d} found, "
          f"recall {recall(federated_values, gold):.2f}")
    for entry in federated.per_dataset:
        print(f"    {entry.dataset_uri}: {entry.row_count} rows")

    print()
    print("The rewritten federation recovers co-authors that only appear in the")
    print("KISTI or DBpedia copies of the bibliography — the recall gain that")
    print("motivates the paper's approach.")


if __name__ == "__main__":
    main()
