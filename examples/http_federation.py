"""Network-transparent federation: the mediator over real sockets.

The paper's deployment (Figure 5) assumes SPARQL endpoints reachable over
HTTP.  This demo makes the reproduction match that topology on loopback:

1. the KISTI and DBpedia datasets are each published by their own
   :class:`SparqlHttpServer` on 127.0.0.1 (ephemeral ports),
2. a second dataset registry points at them through
   :class:`HttpSparqlEndpoint` clients — RKB stays in-process, showing
   that local and remote endpoints mix freely behind the same interface,
3. the Figure-1 co-author query is federated through both topologies and
   the merged results are compared byte-for-byte,
4. the servers' ``/health`` and ``/metrics`` resources are fetched with
   plain ``urllib``, exactly as an operator's curl would.

Run with::

    python examples/http_federation.py
"""

import json
import urllib.request

from repro.datasets import build_resist_scenario
from repro.federation import (
    DatasetRegistry,
    HttpSparqlEndpoint,
    MediatorService,
    RegisteredDataset,
)
from repro.server import EndpointBackend, SparqlHttpServer
from repro.sparql import write_results

SCENARIO_PARAMETERS = dict(
    n_persons=40,
    n_papers=100,
    rkb_coverage=0.55,
    kisti_coverage=0.6,
    dbpedia_coverage=0.35,
    seed=7,
)


def main() -> None:
    scenario = build_resist_scenario(**SCENARIO_PARAMETERS)

    # ------------------------------------------------------------------ #
    # 1. Publish KISTI and DBpedia over HTTP, keep RKB in-process.
    # ------------------------------------------------------------------ #
    servers = {}
    datasets = []
    for dataset in scenario.registry:
        if dataset.uri == scenario.rkb_dataset:
            datasets.append(dataset)  # stays local
            continue
        server = SparqlHttpServer(EndpointBackend(dataset.endpoint)).start()
        servers[dataset.uri] = server
        datasets.append(
            RegisteredDataset(
                dataset.description,
                HttpSparqlEndpoint(dataset.uri, url=server.query_url, timeout=10),
            )
        )
        print(f"serving {dataset.uri}")
        print(f"    at {server.query_url}")

    # ------------------------------------------------------------------ #
    # 2. A mediator whose registry reaches two datasets over the wire.
    # ------------------------------------------------------------------ #
    registry = DatasetRegistry(datasets)
    http_service = MediatorService(
        scenario.alignment_store, registry, scenario.sameas_service
    )

    person_key = scenario.world.most_prolific_author()
    person_uri = scenario.akt_person_uri(person_key)
    query = f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """
    kwargs = dict(
        source_ontology=scenario.source_ontology,
        source_dataset=scenario.rkb_dataset,
        mode="filter-aware",
    )

    # ------------------------------------------------------------------ #
    # 3. Federate through both topologies and compare.
    # ------------------------------------------------------------------ #
    in_process = scenario.service.federate(query, **kwargs)
    over_http = http_service.federate(query, **kwargs)

    print()
    print(f"co-authors of {person_uri}:")
    for label, outcome in (("in-process", in_process), ("loopback HTTP", over_http)):
        rows = ", ".join(
            f"{entry.dataset_uri}={entry.row_count}" for entry in outcome.per_dataset
        )
        print(f"  {label:14s} {len(outcome.merged())} merged rows "
              f"({outcome.elapsed:.3f}s; {rows})")
    identical = write_results(over_http.merged(), "json") == \
        write_results(in_process.merged(), "json")
    print(f"  merged results byte-identical: {identical}")

    # ------------------------------------------------------------------ #
    # 4. Operator's view: health and metrics over plain HTTP.
    # ------------------------------------------------------------------ #
    print()
    for uri, server in servers.items():
        with urllib.request.urlopen(server.url + "/health") as response:
            health = json.loads(response.read())
        with urllib.request.urlopen(server.url + "/metrics") as response:
            metrics = json.loads(response.read())
        print(f"{uri}")
        print(f"    health: {health}")
        print(f"    served {metrics['server']['queries']} queries, "
              f"cache {metrics['server']['cache']}")

    for server in servers.values():
        server.stop()


if __name__ == "__main__":
    main()
