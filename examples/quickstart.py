"""Quickstart: the paper's worked example end to end.

Reproduces Section 3.3.2: the co-author query of Figure 1 (written against
the AKT ontology of the Southampton RKB repository) is rewritten with the
``akt:has-author`` → ``kisti:hasCreatorInfo/hasCreator`` entity alignment of
Figure 2, using the ``sameas`` functional dependency to translate the
instance URI into the KISTI URI space — producing the query of Figure 3.

Run with::

    python examples/quickstart.py
"""

from repro.alignment import (
    EntityAlignment,
    FunctionalDependency,
    SAMEAS_FUNCTION,
    alignments_to_turtle,
    default_registry,
)
from repro.coreference import SameAsService
from repro.core import QueryRewriter
from repro.rdf import AKT, KISTI, KISTI_ID, Literal, RKB_ID, Triple, Variable
from repro.sparql import parse_query

# The SPARQL query of Figure 1: distinct co-authors of person-02686.
FIGURE_1_QUERY = """
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686))
}
"""

#: Regular expression describing the KISTI instance URI space (the second
#: argument of the sameas function in the paper's alignment).
KISTI_URI_PATTERN = r"http://kisti\.rkbexplorer\.com/id/\S*"


def build_figure_2_alignment() -> EntityAlignment:
    """The entity alignment of Figure 2 / the Turtle listing of Section 3.2.2."""
    p1, a1 = Variable("p1"), Variable("a1")
    p2, c, a2 = Variable("p2"), Variable("c"), Variable("a2")
    return EntityAlignment(
        lhs=Triple(p1, AKT["has-author"], a1),
        rhs=[
            Triple(p2, KISTI["hasCreatorInfo"], c),
            Triple(c, KISTI["hasCreator"], a2),
        ],
        functional_dependencies=[
            FunctionalDependency(p2, SAMEAS_FUNCTION, [p1, Literal(KISTI_URI_PATTERN)]),
            FunctionalDependency(a2, SAMEAS_FUNCTION, [a1, Literal(KISTI_URI_PATTERN)]),
        ],
    )


def main() -> None:
    # 1. The co-reference knowledge the original system obtained from
    #    sameas.org: person-02686 has an equivalent KISTI URI.
    sameas = SameAsService()
    sameas.add_equivalence(
        RKB_ID["person-02686"], KISTI_ID["PER_00000000000105047"]
    )

    # 2. The alignment (and how it would be published as RDF).
    alignment = build_figure_2_alignment()
    print("=== Entity alignment (Figure 2) ===")
    print(alignment.describe())
    print()
    print("=== Its RDF encoding (Section 3.2.2 Turtle listing) ===")
    print(alignments_to_turtle([alignment]))

    # 3. Parse the source query and inspect its anatomy (Section 3.1).
    query = parse_query(FIGURE_1_QUERY)
    print("=== Query anatomy (Figure 1) ===")
    print("result form :", [f"?{v.name}" for v in query.projection],
          "(DISTINCT)" if query.modifiers.distinct else "")
    print("BGP         :", [pattern.n3() for pattern in query.all_triple_patterns()])
    print("filters     :", len(list(query.filters())))
    print()

    # 4. Rewrite (Algorithm 1 + Algorithm 2).
    rewriter = QueryRewriter(
        [alignment],
        default_registry(sameas),
        extra_prefixes={"kisti": str(KISTI), "kid": str(KISTI_ID)},
    )
    rewritten, report = rewriter.rewrite(query)
    print("=== Rewritten query (Figure 3) ===")
    print(rewritten.serialize())
    print(f"# {report.matched_count} triple patterns matched, "
          f"{report.output_size} produced, "
          f"alignments used: {len(report.alignments_used())}")


if __name__ == "__main__":
    main()
