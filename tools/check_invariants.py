#!/usr/bin/env python3
"""Repo invariant lints, run as a hard CI gate.

Four structural invariants that ordinary linters do not express, checked
with nothing but the stdlib ``ast`` module:

1. **Hot-loop allocation ban** — inside the batched executor
   (``src/repro/sparql/exec.py``), the per-batch methods of the ``Vec*``
   operators (``_run``, ``execute``, ``_scan_rows``) must not construct
   :class:`Triple` objects or call ``.intern(...)``.  The vectorized core
   works on interned integer ids end to end; materialising terms or
   triples inside an operator loop reintroduces exactly the per-row
   allocation cost the engine exists to avoid.

2. **Lock discipline** — in any class that creates a ``threading.Lock`` /
   ``RLock`` in ``__init__``, the mutable containers also created in
   ``__init__`` (dicts, lists, sets, ``OrderedDict``/``defaultdict``/
   ``deque``) are treated as lock-guarded shared state.  Every mutation of
   them outside ``__init__`` — subscript assignment or deletion, mutating
   method calls (``append``, ``setdefault``, ``clear``, …), or whole-attr
   rebinding — must happen lexically inside a ``with self.<lock>:`` block.

3. **No bare ``except:``** — repo-wide.  A handler must name the
   exceptions it means to swallow.

4. **Operator span coverage** — every concrete ``Vec*`` operator class
   (a class named ``Vec...``/``_Vec...`` deriving from a ``Vec`` base)
   must assign a ``span_name`` in its class body, so distributed traces
   and ``repro-trace`` can attribute execution time to every operator.
   The ``VecOperator`` base itself is exempt: it defines the fallback.

5. **Store API boundary** — outside ``src/repro/rdf/``, no code may reach
   into the storage internals that used to be ``Graph`` attributes
   (``_spo``/``_osp``/``_id_spo``/``_id_pos``/``_id_osp``/``_triples``).
   Everything goes through the ``Store`` contract: ``triples()``,
   ``triples_ids()``, ``cardinality()``, ``stats``, ``dictionary``.
   (``_pos`` is deliberately not on the list: tokenizer/parser classes
   legitimately use ``self._pos`` for their cursor position.)

Exit status is non-zero when any violation is found.  Findings are printed
one per line as ``path:line: [INVxxx] message`` so CI logs read like
compiler output.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_ROOTS = ("src", "tests", "benchmarks", "tools")
EXEC_PATH = REPO_ROOT / "src" / "repro" / "sparql" / "exec.py"

#: Operator methods that run once per batch (or per row) and therefore
#: must stay allocation-free.
HOT_METHODS = {"_run", "execute", "_scan_rows"}

#: Calls that mutate a container in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "move_to_end",
    "appendleft", "popleft",
}

#: Constructors whose result counts as a guarded mutable container.
CONTAINER_CALLS = {"dict", "list", "set", "OrderedDict", "defaultdict", "deque"}


class Finding:
    def __init__(self, path: Path, line: int, code: str, message: str) -> None:
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def render(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line}: [{self.code}] {self.message}"


# --------------------------------------------------------------------------- #
# INV001 — no Triple()/intern() in Vec* operator hot loops
# --------------------------------------------------------------------------- #

def check_hot_loops(tree: ast.Module, path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        if not (klass.name.startswith("Vec") or klass.name == "ExecPlan"):
            continue
        for method in klass.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name not in HOT_METHODS:
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "Triple":
                    findings.append(Finding(
                        path, node.lineno, "INV001",
                        f"Triple() constructed in {klass.name}.{method.name}: "
                        "operator loops must stay on interned ids",
                    ))
                if isinstance(func, ast.Attribute) and func.attr == "intern":
                    findings.append(Finding(
                        path, node.lineno, "INV001",
                        f".intern() called in {klass.name}.{method.name}: "
                        "interning belongs in compile/seed, not the batch loop",
                    ))
    return findings


# --------------------------------------------------------------------------- #
# INV002 — lock-guarded containers are only mutated under the lock
# --------------------------------------------------------------------------- #

def _self_attr(node: ast.AST) -> str | None:
    """``self.<name>`` → ``name``; anything else → None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    return (isinstance(func, ast.Attribute)
            and func.attr in {"Lock", "RLock"}) or (
        isinstance(func, ast.Name) and func.id in {"Lock", "RLock"})


def _is_container_ctor(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in CONTAINER_CALLS
    return False


def _guarded_state(klass: ast.ClassDef) -> tuple[set[str], set[str]]:
    """Return ``(lock attrs, guarded container attrs)`` from ``__init__``."""
    locks: set[str] = set()
    containers: set[str] = set()
    for method in klass.body:
        if isinstance(method, ast.FunctionDef) and method.name == "__init__":
            for node in ast.walk(method):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                attr = _self_attr(node.targets[0])
                if attr is None:
                    continue
                if _is_lock_ctor(node.value):
                    locks.add(attr)
                elif _is_container_ctor(node.value):
                    containers.add(attr)
    return locks, containers


def _mutations(node: ast.AST, guarded: set[str]):
    """Yield ``(lineno, attr, what)`` for mutations of guarded attrs."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr in guarded:
                    yield node.lineno, attr, "subscript assignment"
            else:
                attr = _self_attr(target)
                if attr in guarded:
                    yield node.lineno, attr, "attribute rebinding"
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr in guarded:
                    yield node.lineno, attr, "subscript deletion"
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            attr = _self_attr(func.value)
            if attr in guarded:
                yield node.lineno, attr, f".{func.attr}() call"


def _holds_lock(with_node: ast.With, locks: set[str]) -> bool:
    for item in with_node.items:
        attr = _self_attr(item.context_expr)
        if attr in locks:
            return True
    return False


def _walk_method(node: ast.AST, locks: set[str], guarded: set[str],
                 under_lock: bool, out: list[tuple[int, str, str]]) -> None:
    if isinstance(node, ast.With) and _holds_lock(node, locks):
        under_lock = True
    if not under_lock:
        out.extend(_mutations(node, guarded))
    for child in ast.iter_child_nodes(node):
        # nested defs get their own lexical scope; the lock held here does
        # not protect code that runs later inside them
        child_locked = under_lock and not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        _walk_method(child, locks, guarded, child_locked, out)


def check_lock_discipline(tree: ast.Module, path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        locks, guarded = _guarded_state(klass)
        if not locks or not guarded:
            continue
        for method in klass.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name == "__init__":
                continue
            hits: list[tuple[int, str, str]] = []
            _walk_method(method, locks, guarded, False, hits)
            for lineno, attr, what in hits:
                lock_names = ", ".join(sorted(f"self.{l}" for l in locks))
                findings.append(Finding(
                    path, lineno, "INV002",
                    f"{klass.name}.{method.name} mutates self.{attr} "
                    f"({what}) outside `with {lock_names}`",
                ))
    return findings


# --------------------------------------------------------------------------- #
# INV003 — no bare except
# --------------------------------------------------------------------------- #

def check_bare_except(tree: ast.Module, path: Path) -> list[Finding]:
    return [
        Finding(path, node.lineno, "INV003",
                "bare `except:` — name the exceptions this handler swallows")
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


# --------------------------------------------------------------------------- #
# INV004 — every concrete Vec* operator class registers a span name
# --------------------------------------------------------------------------- #

def _base_names(klass: ast.ClassDef):
    for base in klass.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def check_span_names(tree: ast.Module, path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        if not klass.name.lstrip("_").startswith("Vec"):
            continue
        if klass.name == "VecOperator":
            continue  # the base class defines the fallback span name
        if not any("Vec" in name for name in _base_names(klass)):
            continue
        assigned = False
        for node in klass.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            if any(isinstance(t, ast.Name) and t.id == "span_name"
                   for t in targets):
                assigned = True
                break
        if not assigned:
            findings.append(Finding(
                path, klass.lineno, "INV004",
                f"{klass.name} does not assign span_name: every concrete "
                "Vec* operator must register the span it reports as",
            ))
    return findings


# --------------------------------------------------------------------------- #
# INV005 — storage internals are private to src/repro/rdf/
# --------------------------------------------------------------------------- #

#: Index attributes of the storage layer.  ``_pos`` is deliberately absent:
#: tokenizer/parser classes use ``self._pos`` as a cursor position and the
#: check matches attribute names anywhere, not just on graphs.
STORE_INTERNAL_ATTRS = {"_spo", "_osp", "_id_spo", "_id_pos", "_id_osp", "_triples"}
RDF_PACKAGE = REPO_ROOT / "src" / "repro" / "rdf"


def check_store_boundary(tree: ast.Module, path: Path) -> list[Finding]:
    if RDF_PACKAGE in path.parents:
        return []
    return [
        Finding(path, node.lineno, "INV005",
                f"direct access to storage internal .{node.attr}: outside "
                "rdf/ use the Store API (triples_ids/cardinality/stats)")
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute) and node.attr in STORE_INTERNAL_ATTRS
    ]


# --------------------------------------------------------------------------- #

def main() -> int:
    findings: list[Finding] = []
    for root in SCAN_ROOTS:
        base = REPO_ROOT / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            try:
                tree = ast.parse(path.read_text())
            except SyntaxError as exc:
                findings.append(Finding(path, exc.lineno or 0, "INV000",
                                        f"file does not parse: {exc.msg}"))
                continue
            findings.extend(check_bare_except(tree, path))
            findings.extend(check_lock_discipline(tree, path))
            findings.extend(check_span_names(tree, path))
            findings.extend(check_store_boundary(tree, path))
            if path == EXEC_PATH:
                findings.extend(check_hot_loops(tree, path))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariant checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
