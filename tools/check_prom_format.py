#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4), stdlib only.

CI scrapes the live server's ``/metrics`` endpoint and pipes the body
through this checker::

    curl -s http://host:port/metrics | python tools/check_prom_format.py
    python tools/check_prom_format.py metrics.txt --require repro_http_requests_total

Checked per the exposition-format spec:

* every non-comment line parses as ``name{labels} value`` with a legal
  metric name, legal label names, correctly quoted/escaped label values
  and a float-parseable value (``+Inf``/``-Inf``/``NaN`` included);
* ``# TYPE`` names one of the known metric kinds, appears at most once
  per family, and precedes that family's first sample;
* no duplicate samples (same name and label set twice);
* histogram families carry ``_bucket`` series with an ``le`` label, end
  in an ``le="+Inf"`` bucket whose count equals ``_count``, and bucket
  counts are cumulative (non-decreasing as ``le`` grows).

``--require NAME`` (repeatable) additionally fails the check when a
metric family is absent — CI uses it to pin the families the server must
export.  Exit status is non-zero on any violation; findings are printed
one per line as ``line N: message``.
"""

from __future__ import annotations

import argparse
import re
import sys

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
#: Series suffixes a ``# TYPE x histogram``/``summary`` declaration covers.
_FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


class Failure(Exception):
    """A line violates the exposition format; str(exc) is the message."""


def _parse_labels(text: str, line: int) -> tuple[tuple[str, str], ...]:
    """Parse ``name="value",...`` (the text between the braces)."""
    labels = []
    position = 0
    while position < len(text):
        match = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", text[position:])
        if match is None:
            raise Failure(f"line {line}: malformed label pair at {text[position:]!r}")
        name = match.group(1)
        position += match.end()
        value = []
        while True:
            if position >= len(text):
                raise Failure(f"line {line}: unterminated label value for {name!r}")
            char = text[position]
            if char == "\\":
                if position + 1 >= len(text) or text[position + 1] not in "\\\"n":
                    raise Failure(f"line {line}: bad escape in label {name!r}")
                value.append({"n": "\n"}.get(text[position + 1], text[position + 1]))
                position += 2
            elif char == '"':
                position += 1
                break
            elif char == "\n":
                raise Failure(f"line {line}: raw newline in label {name!r}")
            else:
                value.append(char)
                position += 1
        labels.append((name, "".join(value)))
        if position < len(text):
            if text[position] != ",":
                raise Failure(f"line {line}: expected ',' between labels, "
                              f"got {text[position]!r}")
            position += 1
    return tuple(labels)


def _parse_value(text: str, line: int) -> float:
    if text in ("+Inf", "-Inf"):
        return float(text.replace("Inf", "inf"))
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        raise Failure(f"line {line}: unparseable sample value {text!r}") from None


def _family(name: str) -> str:
    """The metric family a series name belongs to (strip histogram suffixes)."""
    for suffix in _FAMILY_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text: str) -> tuple[list[str], dict[str, str], list[tuple[str, tuple, float]]]:
    """Validate ``text``; return ``(problems, types by family, samples)``."""
    problems: list[str] = []
    types: dict[str, str] = {}
    samples: list[tuple[str, tuple, float]] = []
    seen: set[tuple[str, tuple]] = set()
    sampled_families: set[str] = set()

    for number, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        try:
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                    continue  # other comments are legal and ignored
                name = parts[2]
                if not _METRIC_NAME.match(name):
                    raise Failure(f"line {number}: illegal metric name {name!r}")
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        raise Failure(f"line {number}: unknown TYPE {kind!r} "
                                      f"for {name}")
                    if name in types:
                        raise Failure(f"line {number}: duplicate TYPE for {name}")
                    if name in sampled_families:
                        raise Failure(f"line {number}: TYPE for {name} after "
                                      f"its samples")
                    types[name] = kind
                continue

            match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                             r"(\s+-?\d+)?\s*$", line)
            if match is None:
                raise Failure(f"line {number}: not a valid sample line: {line!r}")
            name, _, label_text, value_text, _ = match.groups()
            labels = _parse_labels(label_text, number) if label_text else ()
            for label_name, _ in labels:
                if not _LABEL_NAME.match(label_name):
                    raise Failure(f"line {number}: illegal label name "
                                  f"{label_name!r}")
            value = _parse_value(value_text, number)
            key = (name, tuple(sorted(labels)))
            if key in seen:
                raise Failure(f"line {number}: duplicate sample {name}"
                              f"{dict(labels)}")
            seen.add(key)
            sampled_families.add(_family(name))
            samples.append((name, labels, value))
        except Failure as failure:
            problems.append(str(failure))

    problems.extend(_check_histograms(types, samples))
    return problems, types, samples


def _check_histograms(
    types: dict[str, str], samples: list[tuple[str, tuple, float]]
) -> list[str]:
    """Cumulative-bucket and +Inf/_count consistency per histogram series."""
    problems: list[str] = []
    histograms = {name for name, kind in types.items() if kind == "histogram"}
    # Group bucket samples by (family, non-le labels).
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in samples:
        family = _family(name)
        if family not in histograms:
            continue
        rest = tuple(sorted(pair for pair in labels if pair[0] != "le"))
        if name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                problems.append(f"{family}: _bucket sample without an le label")
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault((family, rest), []).append((bound, value))
        elif name.endswith("_count"):
            counts[(family, rest)] = value
    for (family, rest), series in buckets.items():
        ordered = sorted(series)
        if not ordered or ordered[-1][0] != float("inf"):
            problems.append(f"{family}{dict(rest)}: histogram lacks the "
                            f'le="+Inf" bucket')
            continue
        cumulative = [count for _, count in ordered]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            problems.append(f"{family}{dict(rest)}: bucket counts are not "
                            f"cumulative: {cumulative}")
        total = counts.get((family, rest))
        if total is not None and total != ordered[-1][1]:
            problems.append(f"{family}{dict(rest)}: _count {total:g} != "
                            f'le="+Inf" bucket {ordered[-1][1]:g}')
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate Prometheus 0.0.4 text exposition format.")
    parser.add_argument("path", nargs="?", default="-",
                        help="file to check ('-' or absent: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this metric family has samples "
                             "(repeatable)")
    arguments = parser.parse_args(argv)
    if arguments.path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(arguments.path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: cannot read {arguments.path}: {error}",
                  file=sys.stderr)
            return 2

    problems, types, samples = check(text)
    families = {_family(name) for name, _, _ in samples}
    for name in arguments.require:
        if name not in families:
            problems.append(f"required metric family {name!r} has no samples")
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} exposition-format problem(s)", file=sys.stderr)
        return 1
    print(f"prometheus exposition ok: {len(samples)} samples in "
          f"{len(families)} families ({len(types)} typed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
