"""E3 — Section 3.3.2 worked example + Figure 3: rewriting Figure 1 to KISTI.

The paper walks Algorithm 1 over the Figure 1 query with the Figure 2
alignment: both ``akt:has-author`` patterns match, the ``sameas`` functional
dependency maps ``id:person-02686`` to its KISTI URI, the ``?c`` variable is
renamed to a fresh variable per application, and the result is the Figure 3
query (two ``hasCreatorInfo``/``hasCreator`` chains).  This benchmark
reproduces the rewriting and measures its latency.
"""

from repro.core import QueryRewriter
from repro.rdf import AKT, KISTI, KISTI_ID, Variable
from repro.sparql import parse_query

from .conftest import FIGURE_1_QUERY, KISTI_PERSON_URI, report


def test_bench_e3_rewrite_figure1_to_figure3(
    benchmark, worked_example_alignment, worked_example_registry
):
    rewriter = QueryRewriter(
        [worked_example_alignment], worked_example_registry,
        extra_prefixes={"kisti": str(KISTI), "kid": str(KISTI_ID)},
    )
    source = parse_query(FIGURE_1_QUERY)

    rewritten, rewrite_report = benchmark(rewriter.rewrite, source)

    patterns = rewritten.all_triple_patterns()
    info_patterns = [p for p in patterns if p.predicate == KISTI["hasCreatorInfo"]]
    creator_patterns = [p for p in patterns if p.predicate == KISTI["hasCreator"]]

    # Shape of Figure 3.
    assert len(patterns) == 4
    assert len(info_patterns) == 2
    assert len(creator_patterns) == 2
    assert KISTI_PERSON_URI in {p.object for p in creator_patterns}
    assert Variable("a") in {p.object for p in creator_patterns}
    assert AKT["has-author"] not in {p.predicate for p in patterns}
    assert len({p.object for p in info_patterns}) == 2  # fresh variables differ

    report(
        "E3: worked example (Figure 1 -> Figure 3)",
        [
            ("input BGP size", rewrite_report.input_size),
            ("matched triple patterns", rewrite_report.matched_count),
            ("output BGP size", rewrite_report.output_size),
            ("hasCreatorInfo patterns", len(info_patterns)),
            ("hasCreator patterns", len(creator_patterns)),
            ("author URI translated", str(KISTI_PERSON_URI in {p.object for p in patterns})),
            ("fresh variables introduced", len({p.object for p in info_patterns})),
        ],
        headers=("quantity", "value"),
    )
    print()
    print(rewritten.serialize())


def test_bench_e3_ablation_without_coreference(
    benchmark, worked_example_alignment
):
    """Ablation: without co-reference knowledge the URI stays in the RKB space.

    This isolates the contribution of the co-reference resolution step the
    paper folds into the rewriting (Section 3.3.1): with an *empty* sameas
    store the structure is still translated, but the instance URI keeps its
    source-dataset form, so the rewritten query cannot match anything on the
    target endpoint.
    """
    from repro.alignment import default_registry
    from repro.coreference import SameAsService

    rewriter = QueryRewriter([worked_example_alignment], default_registry(SameAsService()))
    rewritten, _ = benchmark(rewriter.rewrite, parse_query(FIGURE_1_QUERY))
    objects = {p.object for p in rewritten.all_triple_patterns()}
    assert KISTI_PERSON_URI not in objects
    assert any("southampton" in str(obj) for obj in objects)
