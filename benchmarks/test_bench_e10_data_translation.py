"""E10 (extension) — three integration strategies on the same alignment KB.

The paper positions query rewriting against two alternatives it cites but
does not measure: shipping the *data* to the query (materialisation /
reasoning, Section 2) and Euzenat-style CONSTRUCT-based data translation
(Section 2, open issue of generating the CONSTRUCT queries from declared
alignments).  Having implemented all three over the same alignment model,
this extension experiment compares them head-to-head on the KISTI scenario:

* answer agreement — all three strategies must retrieve the same co-author
  sets (they implement the same alignments);
* cost profile — per-query cost (rewriting) vs. per-dataset cost
  (materialisation, CONSTRUCT translation).
"""

from time import perf_counter

from repro.alignment import default_registry
from repro.baselines import MaterializationIntegrator
from repro.core import DataTranslator, QueryRewriter
from repro.datasets import (
    KISTI_URI_PATTERN,
    RKB_URI_PATTERN,
    akt_to_kisti_alignment,
)
from repro.sparql import QueryEvaluator, parse_query

from .conftest import report


def _coauthor_query(person_uri) -> str:
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
    }}
    """


def test_bench_e10_strategy_agreement_and_cost(benchmark, scenario):
    alignments = list(akt_to_kisti_alignment())
    registry = default_registry(scenario.sameas_service)
    kisti_graph = scenario.endpoint(scenario.kisti_dataset)._graph  # noqa: SLF001
    akt_graph = scenario.endpoint(scenario.rkb_dataset)._graph  # noqa: SLF001

    # Query subjects: persons present in both RKB and KISTI.
    subjects = [
        key for key in sorted(scenario.kisti_builder.covered_person_keys)
        if key in scenario.akt_builder.covered_person_keys
    ][:5]
    queries = {key: _coauthor_query(scenario.akt_builder.person_uri(key)) for key in subjects}

    # ------------------------------------------------------------------ #
    # Strategy A: query rewriting (per query), canonicalised to RKB space.
    # ------------------------------------------------------------------ #
    rewriter = QueryRewriter(alignments, registry)
    start = perf_counter()
    rewriting_answers = {}
    for key, query in queries.items():
        rewritten, _ = rewriter.rewrite(parse_query(query))
        rows = QueryEvaluator(kisti_graph).select(rewritten)
        rewriting_answers[key] = {
            scenario.sameas_service.translate_or_keep(value, RKB_URI_PATTERN)
            for value in rows.distinct_values("a")
        }
    rewriting_time = perf_counter() - start

    # ------------------------------------------------------------------ #
    # Strategy B: materialisation (reverse rule application, per dataset).
    # ------------------------------------------------------------------ #
    integrator = MaterializationIntegrator(alignments, scenario.sameas_service, RKB_URI_PATTERN)
    start = perf_counter()
    materialized, stats = integrator.integrate([kisti_graph])
    materialization_time = perf_counter() - start
    materialization_answers = {
        key: set(QueryEvaluator(materialized).select(query).distinct_values("a"))
        for key, query in queries.items()
    }

    # ------------------------------------------------------------------ #
    # Strategy C: CONSTRUCT-based data translation of the *source* data into
    # the KISTI vocabulary, queried with the rewritten query (round trip).
    # ------------------------------------------------------------------ #
    translator = DataTranslator(alignments, scenario.sameas_service, KISTI_URI_PATTERN)
    start = perf_counter()
    translated = translator.translate(akt_graph)
    translation_time = perf_counter() - start

    def run_rewriting_once():
        key = subjects[0]
        rewritten, _ = rewriter.rewrite(parse_query(queries[key]))
        return QueryEvaluator(kisti_graph).select(rewritten)

    benchmark(run_rewriting_once)

    # Agreement: rewriting vs materialisation must find the same RKB-space
    # co-authors (restricted to entities that have an RKB equivalent).
    agreement = 0
    for key in subjects:
        left = {v for v in rewriting_answers[key] if "southampton" in str(v)}
        right = {v for v in materialization_answers[key] if "southampton" in str(v)}
        assert left == right, f"strategies disagree for person {key}"
        agreement += len(left)

    report(
        "E10: integration strategies on the same alignment KB",
        [
            ("query rewriting (5 queries)", f"{rewriting_time * 1000:.1f} ms",
             "per query; no data preparation"),
            ("materialisation of KISTI data", f"{materialization_time * 1000:.1f} ms",
             f"{stats.derived_triples} triples derived before any query"),
            ("CONSTRUCT data translation of RKB data", f"{translation_time * 1000:.1f} ms",
             f"{len(translated)} triples published in the KISTI vocabulary"),
            ("answer agreement (rewriting vs materialisation)", f"{agreement} shared bindings",
             "identical RKB-space co-author sets"),
        ],
        headers=("strategy", "cost", "notes"),
    )

    # Cost-profile shape: a single rewriting pass is far cheaper than either
    # data-level strategy on this (small) dataset.
    assert rewriting_time < materialization_time
    assert rewriting_time < translation_time
