"""E8 — Section 3.2.2: alignment expressivity levels 0 / 1 / 2.

The paper illustrates what the formalism expresses at each level with the
wine examples: a level-0 class/property renaming, the level-1 Burgundy ->
Wine AND BurgundyRegionProduct intersection and the level-2 WhiteWine ->
Wine with has_color "White" value partition.  This benchmark applies all
three example alignments (plus the worked example's chain) to matching
queries, checks the produced patterns and verifies each produced query
against data published with the target vocabulary.
"""

from repro.alignment import (
    class_alignment,
    class_to_intersection_alignment,
    class_to_value_partition_alignment,
    classify_level,
    default_registry,
)
from repro.core import QueryRewriter
from repro.rdf import Graph, Literal, Namespace, RDF, Triple
from repro.sparql import QueryEvaluator, parse_query

from .conftest import report

WINE1 = Namespace("http://example.org/wine1#")
WINE2 = Namespace("http://example.org/wine2#")
GOODS = Namespace("http://example.org/goods#")
O1 = Namespace("http://example.org/o1#")
O2 = Namespace("http://example.org/o2#")


def _target_data() -> Graph:
    """Data published with the *target* vocabularies of the examples."""
    graph = Graph()
    # A Burgundy in the wine2/goods modelling.
    graph.add(Triple(WINE2["bottle-1"], RDF.type, WINE2.Wine))
    graph.add(Triple(WINE2["bottle-1"], RDF.type, GOODS.BurgundyRegionProduct))
    # A wine that is not a Burgundy region product.
    graph.add(Triple(WINE2["bottle-2"], RDF.type, WINE2.Wine))
    # A white wine in the O2 value-partition modelling.
    graph.add(Triple(O2["bottle-3"], RDF.type, O2.Wine))
    graph.add(Triple(O2["bottle-3"], O2.has_color, Literal("White")))
    # A red wine.
    graph.add(Triple(O2["bottle-4"], RDF.type, O2.Wine))
    graph.add(Triple(O2["bottle-4"], O2.has_color, Literal("Red")))
    return graph


EXAMPLES = [
    (
        "level 0: class renaming",
        class_alignment(WINE1.Burgundy, WINE2.Wine),
        "SELECT ?w WHERE { ?w a <http://example.org/wine1#Burgundy> }",
        {"bottle-1", "bottle-2"},
    ),
    (
        "level 1: Burgundy -> Wine AND BurgundyRegionProduct",
        class_to_intersection_alignment(WINE1.Burgundy,
                                        [WINE2.Wine, GOODS.BurgundyRegionProduct]),
        "SELECT ?w WHERE { ?w a <http://example.org/wine1#Burgundy> }",
        {"bottle-1"},
    ),
    (
        "level 2: WhiteWine -> Wine + has_color 'White'",
        class_to_value_partition_alignment(O1.WhiteWine, O2.Wine, O2.has_color,
                                           Literal("White")),
        "SELECT ?w WHERE { ?w a <http://example.org/o1#WhiteWine> }",
        {"bottle-3"},
    ),
]


def test_bench_e8_level_examples(benchmark):
    data = _target_data()
    evaluator = QueryEvaluator(data)
    registry = default_registry()

    def run_all():
        results = []
        for label, alignment, query_text, expected_locals in EXAMPLES:
            rewriter = QueryRewriter([alignment], registry)
            rewritten, rewrite_report = rewriter.rewrite(parse_query(query_text))
            result = evaluator.select(rewritten)
            found = {str(value).rsplit("#", 1)[-1] for value in result.distinct_values("w")}
            results.append((label, alignment, rewrite_report, found, expected_locals))
        return results

    results = benchmark(run_all)

    rows = []
    for label, alignment, rewrite_report, found, expected in results:
        assert found == expected, f"{label}: expected {expected}, found {found}"
        rows.append((
            label,
            classify_level(alignment),
            rewrite_report.output_size,
            len(found),
        ))
    # All three example wine alignments also exhibit the wine2 ontology's
    # expected membership counts; level classification agrees with the paper.
    assert [row[1] for row in rows] == [0, 1, 2]

    report(
        "E8: alignment expressivity levels (wine examples of Section 3.2.2)",
        rows,
        headers=("example", "level", "rewritten BGP size", "answers on target data"),
    )


def test_bench_e8_ablation_fresh_variable_renaming(benchmark, worked_example_alignment,
                                                   worked_example_registry):
    """Ablation of Algorithm 1 step 4 (fresh variable renaming).

    Re-using the worked example's alignment on two triples *without*
    renaming its free RHS variable ?c would force both CreatorInfo chains
    through the same intermediate node, turning two independent authorship
    statements into one — exactly the "unneeded constraints over variables"
    the paper warns about.  We demonstrate the difference in answer counts
    on a small CreatorInfo dataset.
    """
    from repro.core import GraphPatternRewriter
    from repro.rdf import AKT, KISTI, KISTI_ID, Variable
    from repro.sparql import match_bgp

    # Data: one paper, two authors through two CreatorInfo nodes.
    graph = Graph()
    paper = KISTI_ID["PAP_1"]
    authors = [KISTI_ID["PER_1"], KISTI_ID["PER_2"]]
    for index, author in enumerate(authors):
        info = KISTI_ID[f"CRE_{index}"]
        graph.add(Triple(paper, KISTI["hasCreatorInfo"], info))
        graph.add(Triple(info, KISTI["hasCreator"], author))

    source_bgp = [
        Triple(Variable("paper"), AKT["has-author"], Variable("x")),
        Triple(Variable("paper"), AKT["has-author"], Variable("y")),
    ]

    rewriter = GraphPatternRewriter([worked_example_alignment], worked_example_registry)
    with_renaming, _ = benchmark(rewriter.rewrite_bgp, source_bgp)

    # Manually build the "no renaming" variant: apply the RHS twice with ?c shared.
    without_renaming = []
    for pattern in source_bgp:
        for rhs in worked_example_alignment.rhs:
            substitution = {Variable("p1"): pattern.subject, Variable("a1"): pattern.object,
                            Variable("p2"): pattern.subject, Variable("a2"): pattern.object}
            without_renaming.append(rhs.map_terms(lambda t: substitution.get(t, t)))

    solutions_with = list(match_bgp(with_renaming, graph))
    solutions_without = list(match_bgp(without_renaming, graph))
    pairs_with = {(s.get_term("x"), s.get_term("y")) for s in solutions_with}
    pairs_without = {(s.get_term("x"), s.get_term("y")) for s in solutions_without}

    report(
        "E8 ablation: fresh-variable renaming (Algorithm 1 step 4)",
        [
            ("with renaming (paper)", len(pairs_with)),
            ("without renaming (shared ?c)", len(pairs_without)),
        ],
        headers=("variant", "distinct (x, y) author pairs"),
    )
    # With renaming we get all 4 ordered pairs over 2 authors; sharing ?c
    # collapses the cross pairs.
    assert len(pairs_with) == 4
    assert len(pairs_without) < len(pairs_with)
