"""E4 — Section 3.4: the deployed mediator and its alignment knowledge bases.

The paper reports the deployed system's alignment KB sizes — "42 alignments
(mixed concept and properties alignments) between ECS data set and DBpedia;
24 alignments ... between AKT data and KISTI data set" — backed by an
alignment KB and a voiD KB stored in RDF.  This benchmark rebuilds both
knowledge bases, verifies the counts and measures a translate-query sweep
over both targets through the mediator service.
"""

from repro.alignment import AlignmentStore, classify_level
from repro.rdf import MAP, RDF, VOID

from .conftest import FIGURE_1_QUERY, report

PUBLICATION_QUERIES = {
    "co-authors (Figure 1)": FIGURE_1_QUERY,
    "titles by year": """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT ?p ?t WHERE { ?p akt:has-title ?t . ?p akt:has-year ?y . FILTER (?y > 2003) }
    """,
    "people + affiliations": """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT ?person ?org WHERE { ?person a akt:Person . ?person akt:has-affiliation ?org }
    """,
    "project members": """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT ?prj ?m WHERE { ?prj a akt:Project . ?prj akt:has-project-member ?m }
    """,
}


def test_bench_e4_alignment_kb_counts(benchmark, scenario):
    def export_and_reload():
        graph = scenario.service.alignment_kb()
        store = AlignmentStore()
        store.load_graph(graph)
        return graph, store

    graph, store = benchmark(export_and_reload)
    counts = store.counts_by_pair()

    kisti_key = next(key for key in counts if "kisti" in key[1][0])
    dbpedia_key = next(key for key in counts if "dbpedia" in key[1][0])
    assert counts[kisti_key] == 24
    assert counts[dbpedia_key] == 42

    levels = {}
    for oa in store:
        for ea in oa:
            levels[classify_level(ea)] = levels.get(classify_level(ea), 0) + 1

    report(
        "E4: deployed alignment KB (paper: 24 AKT->KISTI, 42 ECS->DBpedia)",
        [
            ("AKT -> KISTI entity alignments", counts[kisti_key]),
            ("AKT/ECS -> DBpedia entity alignments", counts[dbpedia_key]),
            ("total entity alignments", store.entity_alignment_count()),
            ("level-0 / level-1 / level-2", f"{levels.get(0, 0)} / {levels.get(1, 0)} / {levels.get(2, 0)}"),
            ("alignment KB triples (RDF encoding)", len(graph)),
            ("map:EntityAlignment nodes", len(list(graph.subjects(RDF.type, MAP.EntityAlignment)))),
        ],
        headers=("quantity", "value"),
    )


def test_bench_e4_void_kb(benchmark, scenario):
    void_kb = benchmark(scenario.service.void_kb)
    datasets = list(void_kb.subjects(RDF.type, VOID.Dataset))
    endpoints = list(void_kb.triples(None, VOID.sparqlEndpoint, None))
    assert len(datasets) == 3
    assert len(endpoints) == 3
    report(
        "E4: voiD KB (Figure 5 back end)",
        [(str(d), str(void_kb.value(d, VOID.sparqlEndpoint, None))) for d in sorted(datasets, key=str)],
        headers=("dataset", "sparql endpoint"),
    )


def test_bench_e4_mediation_sweep(benchmark, scenario):
    """Translate the query suite for both targets through the mediator."""
    targets = [scenario.kisti_dataset, scenario.dbpedia_dataset]

    def sweep():
        results = []
        for label, query in PUBLICATION_QUERIES.items():
            for target in targets:
                response = scenario.service.translate(
                    query, target, source_ontology=scenario.source_ontology
                )
                results.append((label, target, response))
        return results

    results = benchmark(sweep)
    rows = []
    for label, target, response in results:
        rows.append((
            label,
            "KISTI" if "kisti" in str(target) else "DBpedia",
            response.alignments_considered,
            response.triples_matched,
            response.triples_unmatched,
        ))
        assert response.triples_matched > 0
    report(
        "E4: query translation sweep over the deployed targets",
        rows,
        headers=("query", "target", "alignments", "matched", "unmatched"),
    )
