"""E11 — the query planner: statistics-driven ordering + streaming wins.

Every rewritten query of the mediation pipeline — and every per-endpoint
query of a federation fan-out — is executed by the local SPARQL substrate,
so its evaluation cost multiplies through the whole system.  This
experiment quantifies what the cost-based streaming planner buys over
the dict-at-a-time reference evaluator with a sweep over

* graph size (number of triples),
* BGP size (number of triple patterns in the WHERE clause),
* LIMIT (present or absent),

and pins the headline claim: on a LIMIT-ed query over a >= 50k-triple
graph the streaming plan must be at least 5x faster than the reference
materialising evaluation, because it stops scanning as soon as the limit
is satisfied while the reference path enumerates every solution first.
(The batched *naive* engine streams as well now — see E13 for the
batched-vs-reference comparison on unrestricted multi-joins.)
"""

from __future__ import annotations

from time import perf_counter

from repro.rdf import Graph, Literal, RDF, Triple, URIRef
from repro.sparql import QueryEvaluator, parse_query

from .conftest import report

BENCH = "http://bench.example/"
PERSON = URIRef(BENCH + "Person")
NAME = URIRef(BENCH + "name")
KNOWS = URIRef(BENCH + "knows")
MEMBER = URIRef(BENCH + "memberOf")

#: Entities per sweep point; each entity contributes 5 triples.
GRAPH_ENTITIES = [1_000, 4_000, 10_000]

PREFIX = (
    f"PREFIX ex:<{BENCH}>\n"
    "PREFIX rdf:<http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

QUERIES_BY_BGP_SIZE = {
    1: PREFIX + "SELECT ?p WHERE { ?p ex:name ?n }",
    2: PREFIX + "SELECT ?p ?n WHERE { ?p rdf:type ex:Person . ?p ex:name ?n }",
    3: PREFIX + ("SELECT ?p ?n WHERE { ?p rdf:type ex:Person . "
                 "?p ex:knows ?q . ?q ex:name ?n }"),
}


def build_graph(n_entities: int) -> Graph:
    graph = Graph()
    for i in range(n_entities):
        person = URIRef(f"{BENCH}person{i}")
        graph.add(Triple(person, RDF.type, PERSON))
        graph.add(Triple(person, NAME, Literal(f"name{i:06d}")))
        graph.add(Triple(person, KNOWS, URIRef(f"{BENCH}person{(i * 7 + 1) % n_entities}")))
        graph.add(Triple(person, MEMBER, URIRef(f"{BENCH}org{i % 50}")))
        graph.add(Triple(person, URIRef(f"{BENCH}index"), Literal(i)))
    return graph


def _parse(text: str, limit) -> object:
    query = parse_query(text)
    query.modifiers.limit = limit
    return query


def _time(evaluator: QueryEvaluator, query, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = perf_counter()
        evaluator.evaluate(query)
        best = min(best, perf_counter() - start)
    return best


def test_bench_e11_planner_sweep(benchmark):
    """Sweep graph size x BGP size x LIMIT; check the streaming win."""
    rows = []
    headline_speedup = None
    for n_entities in GRAPH_ENTITIES:
        graph = build_graph(n_entities)
        planner = QueryEvaluator(graph, use_planner=True)
        reference = QueryEvaluator(graph, engine="reference")
        for bgp_size, text in QUERIES_BY_BGP_SIZE.items():
            for limit in (5, None):
                query = _parse(text, limit)
                planner_time = _time(planner, query)
                naive_time = _time(reference, query)
                speedup = naive_time / planner_time if planner_time else float("inf")
                rows.append((
                    len(graph), bgp_size, limit if limit is not None else "-",
                    f"{naive_time * 1000:.2f} ms",
                    f"{planner_time * 1000:.2f} ms",
                    f"{speedup:.1f}x",
                ))
                if n_entities == GRAPH_ENTITIES[-1] and bgp_size == 2 and limit == 5:
                    headline_speedup = speedup

    report(
        "E11: reference evaluator vs. cost-based streaming planner",
        rows,
        headers=("triples", "BGP size", "LIMIT", "reference", "planner", "speedup"),
    )

    # Headline claim: LIMIT-ed BGP over the 50k-triple graph is >= 5x
    # faster because the plan streams and stops early.
    assert headline_speedup is not None
    assert headline_speedup >= 5.0, f"expected >= 5x, measured {headline_speedup:.1f}x"

    # Register the headline measurement with pytest-benchmark.
    graph = build_graph(GRAPH_ENTITIES[-1])
    planner = QueryEvaluator(graph, use_planner=True)
    query = _parse(QUERIES_BY_BGP_SIZE[2], 5)
    benchmark(lambda: planner.evaluate(query))


def test_bench_e11_results_equivalent():
    """Both engines agree on every sweep query (sorted-row comparison)."""
    graph = build_graph(500)
    planner = QueryEvaluator(graph, use_planner=True)
    naive = QueryEvaluator(graph, use_planner=False)
    for text in QUERIES_BY_BGP_SIZE.values():
        query = parse_query(text)
        planned_rows = sorted(map(repr, planner.select(query)))
        naive_rows = sorted(map(repr, naive.select(query)))
        assert planned_rows == naive_rows


def test_bench_e11_ask_constant_time():
    """ASK over a large graph answers without enumerating solutions."""
    graph = build_graph(GRAPH_ENTITIES[-1])
    planner = QueryEvaluator(graph, use_planner=True)
    reference = QueryEvaluator(graph, engine="reference")
    query = parse_query(PREFIX + "ASK { ?p rdf:type ex:Person . ?p ex:name ?n }")
    planner_time = _time(planner, query)
    reference_time = _time(reference, query)
    assert bool(planner.evaluate(query)) is True
    report(
        "E11b: ASK early termination",
        [(len(graph), f"{reference_time * 1000:.2f} ms", f"{planner_time * 1000:.2f} ms")],
        headers=("triples", "reference ASK", "planner ASK"),
    )
    assert planner_time <= reference_time
