"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``test_bench_e*.py`` file regenerates one artefact of the paper (a
figure, a worked example, a deployment statistic or a qualitative claim —
see DESIGN.md Section 4 and EXPERIMENTS.md).  Benchmarks both *measure*
(via pytest-benchmark) and *check the shape* of the result (via plain
assertions), so ``pytest benchmarks/ --benchmark-only`` doubles as the
experiment reproduction run.

Run with ``-s`` to see the per-experiment report tables.
"""

from __future__ import annotations

import pytest

from repro.alignment import EntityAlignment, FunctionalDependency, SAMEAS_FUNCTION, default_registry
from repro.coreference import SameAsService
from repro.datasets import build_resist_scenario
from repro.rdf import AKT, KISTI, KISTI_ID, Literal, RKB_ID, Triple, Variable

#: The Figure 1 query (the running example of the whole paper).
FIGURE_1_QUERY = """
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686))
}
"""

#: The Figure 6 variant (constraint moved into the FILTER).
FIGURE_6_QUERY = """
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author ?n .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686) && (?n = id:person-02686))
}
"""

KISTI_URI_PATTERN = r"http://kisti\.rkbexplorer\.com/id/\S*"
KISTI_PERSON_URI = KISTI_ID["PER_00000000000105047"]


def report(title: str, rows: list[tuple], headers: tuple) -> None:
    """Print a small fixed-width table (the experiment's 'paper row')."""
    widths = [len(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print()
    print(f"=== {title} ===")
    print(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    print("-+-".join("-" * w for w in widths))
    for row in text_rows:
        print(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture(scope="session")
def worked_example_sameas() -> SameAsService:
    service = SameAsService()
    service.add_equivalence(RKB_ID["person-02686"], KISTI_PERSON_URI)
    return service


@pytest.fixture(scope="session")
def worked_example_alignment() -> EntityAlignment:
    p1, a1 = Variable("p1"), Variable("a1")
    p2, c, a2 = Variable("p2"), Variable("c"), Variable("a2")
    return EntityAlignment(
        lhs=Triple(p1, AKT["has-author"], a1),
        rhs=[
            Triple(p2, KISTI["hasCreatorInfo"], c),
            Triple(c, KISTI["hasCreator"], a2),
        ],
        functional_dependencies=[
            FunctionalDependency(p2, SAMEAS_FUNCTION, [p1, Literal(KISTI_URI_PATTERN)]),
            FunctionalDependency(a2, SAMEAS_FUNCTION, [a1, Literal(KISTI_URI_PATTERN)]),
        ],
    )


@pytest.fixture(scope="session")
def worked_example_registry(worked_example_sameas):
    return default_registry(worked_example_sameas)


@pytest.fixture(scope="session")
def scenario():
    """The deployed-system scenario (RKB + KISTI + DBpedia, 24+42 alignments)."""
    return build_resist_scenario(
        n_persons=40,
        n_papers=100,
        n_projects=6,
        n_organizations=5,
        rkb_coverage=0.55,
        kisti_coverage=0.6,
        dbpedia_coverage=0.35,
        seed=2010,
    )
