"""E12 — source selection and bound joins vs whole-query fan-out.

Sweeps endpoint count × predicate selectivity over a synthetic federation
and measures what the decomposer actually saves:

* **endpoints contacted** — a predicate held by only ``k`` of ``n``
  endpoints is, under fan-out, shipped to all ``n`` (each evaluates the
  whole query, most return nothing); source selection contacts exactly the
  ``k`` holders.
* **rows shipped** — under a ``LIMIT`` the fan-out strategy retrieves up
  to LIMIT rows *per endpoint* (the mediator then throws most away), while
  the decomposer's streaming bound join stops pulling batches as soon as
  the global LIMIT is satisfied.

The sweep also reasserts result equality between the strategies on the
unlimited workload (the differential suite covers E6/E7; this pins the
synthetic E12 data), and reports the bound join's request overhead
honestly — batches cost extra round trips, which is the price of not
shipping full extensions.
"""

from repro.alignment import AlignmentStore
from repro.coreference import SameAsService
from repro.federation import (
    DatasetDescription,
    DatasetRegistry,
    LocalSparqlEndpoint,
    MediatorService,
)
from repro.rdf import Graph, Triple, URIRef

from .conftest import report

EX = "http://e12.org/"
ONTOLOGY = URIRef(EX + "ontology")

#: Papers per rare-predicate endpoint, and common values per paper.
RARE_SUBJECTS = 10
FANOUT_PER_SUBJECT = 20


def _build(n_endpoints: int, rare_holders: int) -> MediatorService:
    """``n_endpoints`` disjoint repositories; the first ``rare_holders``
    also hold the ``rare`` predicate (subjects are endpoint-local)."""
    registry = DatasetRegistry()
    for index in range(n_endpoints):
        graph = Graph()
        for item in range(RARE_SUBJECTS):
            subject = URIRef(f"{EX}e{index}-s{item}")
            for value in range(FANOUT_PER_SUBJECT):
                graph.add(Triple(
                    subject, URIRef(EX + "common"),
                    URIRef(f"{EX}e{index}-v{item}-{value}"),
                ))
            if index < rare_holders:
                graph.add(Triple(
                    subject, URIRef(EX + "rare"), URIRef(f"{EX}e{index}-w{item}")
                ))
        uri = URIRef(f"{EX}dataset-{index}")
        registry.register_endpoint(
            DatasetDescription(
                uri=uri,
                endpoint_uri=URIRef(f"{EX}dataset-{index}/sparql"),
                ontologies=(ONTOLOGY,),
            ),
            LocalSparqlEndpoint(
                URIRef(f"{EX}dataset-{index}/sparql"), graph,
                name=f"endpoint-{index}",
            ),
        )
    return MediatorService(AlignmentStore(), registry, SameAsService())


RARE_QUERY = (
    f"SELECT ?s ?w WHERE {{ ?s <{EX}rare> ?w }}"
)
JOIN_QUERY = (
    f"SELECT ?s ?w ?v WHERE {{ ?s <{EX}rare> ?w . ?s <{EX}common> ?v }}"
)


def _multiset(outcome):
    return sorted(
        tuple((k, str(v)) for k, v in sorted(b.as_dict().items()))
        for b in outcome.merged_bindings
    )


def test_bench_e12_source_selection_contacts_fewer_endpoints(benchmark):
    """Selective predicate: decompose contacts the holders, fan-out everyone."""

    def run_sweep():
        rows = []
        for n_endpoints in (2, 4, 8):
            for rare_holders in sorted({1, n_endpoints // 2, n_endpoints}):
                service = _build(n_endpoints, rare_holders)
                fanout = service.federate(RARE_QUERY)
                decomposed = service.federate(RARE_QUERY, strategy="decompose")
                assert _multiset(decomposed) == _multiset(fanout)
                rows.append((
                    n_endpoints, rare_holders,
                    fanout.endpoints_contacted, decomposed.endpoints_contacted,
                    fanout.total_rows, decomposed.total_rows,
                ))
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E12: endpoints contacted, fan-out vs decompose (selective predicate)",
        rows,
        headers=("endpoints", "holders", "contacted (fanout)",
                 "contacted (decompose)", "rows (fanout)", "rows (decompose)"),
    )
    for n_endpoints, rare_holders, fan_contacted, dec_contacted, _, _ in rows:
        assert fan_contacted == n_endpoints
        assert dec_contacted == rare_holders
        if n_endpoints >= 4 and rare_holders < n_endpoints:
            assert dec_contacted < fan_contacted


def test_bench_e12_bound_join_ships_fewer_rows_under_limit(benchmark):
    """LIMIT workload: global streaming beats per-endpoint LIMIT shipping."""
    limit = 100
    batch = 10

    def run_sweep():
        rows = []
        for n_endpoints, rare_holders in ((4, 4), (8, 4), (8, 8)):
            service = _build(n_endpoints, rare_holders)
            service.federation.bind_join_batch = batch
            query = f"{JOIN_QUERY} LIMIT {limit}"
            fanout = service.federate(query)
            decomposed = service.federate(query, strategy="decompose")
            unlimited = service.federate(JOIN_QUERY)
            assert len(decomposed.merged()) == limit
            # Every decomposed row is a true federation answer.
            universe = set(_multiset(unlimited))
            assert set(_multiset(decomposed)) <= universe
            rows.append((
                n_endpoints, rare_holders,
                fanout.total_rows, decomposed.total_rows,
                fanout.total_requests or len(fanout.per_dataset),
                decomposed.total_requests,
            ))
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        f"E12: rows shipped under LIMIT {limit} (bound-join batch {batch})",
        rows,
        headers=("endpoints", "holders", "rows (fanout)", "rows (decompose)",
                 "requests (fanout)", "requests (decompose)"),
    )
    for n_endpoints, _, fan_rows, dec_rows, _, _ in rows:
        if n_endpoints >= 4:
            assert dec_rows < fan_rows


def test_bench_e12_unlimited_join_parity_and_overhead(benchmark):
    """Without LIMIT the bound join pays an intermediate-row overhead;
    results stay identical.  Reported so the trade-off is visible."""

    def run():
        service = _build(4, 4)
        fanout = service.federate(JOIN_QUERY)
        decomposed = service.federate(JOIN_QUERY, strategy="decompose")
        assert _multiset(decomposed) == _multiset(fanout)
        return (
            len(fanout.merged()),
            fanout.total_rows, decomposed.total_rows,
            decomposed.total_requests,
        )

    merged, fan_rows, dec_rows, dec_requests = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "E12: unlimited join — decompose ships the seed unit on top",
        [(merged, fan_rows, dec_rows, dec_requests)],
        headers=("merged rows", "rows (fanout)", "rows (decompose)",
                 "requests (decompose)"),
    )
    assert dec_rows >= fan_rows  # the honest cost of mediator-side joins
