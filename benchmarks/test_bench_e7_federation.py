"""E7b — concurrent federated execution under simulated latency.

The paper's federation step queries every registered repository; over HTTP
those requests are latency-bound and independent, so fanning out
concurrently should approach a speedup linear in the number of endpoints.
This benchmark builds a synthetic federation of up to 8 endpoints with a
fixed simulated per-query latency, runs the same query sequentially and in
parallel, and checks that

* the merged result sets are byte-identical (fan-out must not change
  semantics, whatever the completion order), and
* parallel execution is at least 2x faster at 8 endpoints,

plus a resilience sweep: flaky endpoints recover within their retry
budget, and a dead endpoint's circuit breaker stops the federation from
hammering it.
"""

import time

from repro.alignment import AlignmentStore
from repro.coreference import SameAsService
from repro.federation import (
    DatasetDescription,
    DatasetRegistry,
    ExecutionPolicy,
    LocalSparqlEndpoint,
    MediatorService,
)
from repro.rdf import Graph, Triple, URIRef

from .conftest import report

EX = "http://ex.org/"
LATENCY = 0.05
QUERY = "PREFIX ex: <http://ex.org/>\nSELECT ?s ?o WHERE { ?s ex:p ?o }"


def _build_federation(n_endpoints: int, latency: float = LATENCY) -> MediatorService:
    """``n_endpoints`` overlapping repositories over one shared vocabulary.

    Endpoint ``i`` holds items ``5*i .. 5*i+9``, so neighbours overlap and
    the merge has duplicates to collapse.  All datasets share the same
    ontology, so the (empty-KB) rewrite is the identity and the benchmark
    isolates the execution layer.
    """
    registry = DatasetRegistry()
    ontology = URIRef(EX + "ontology")
    for index in range(n_endpoints):
        graph = Graph()
        for item in range(5 * index, 5 * index + 10):
            graph.add(Triple(
                URIRef(f"{EX}item-{item:03d}"),
                URIRef(EX + "p"),
                URIRef(f"{EX}value-{item:03d}"),
            ))
        uri = URIRef(f"{EX}dataset-{index}")
        registry.register_endpoint(
            DatasetDescription(
                uri=uri,
                endpoint_uri=URIRef(f"{EX}dataset-{index}/sparql"),
                ontologies=(ontology,),
            ),
            LocalSparqlEndpoint(
                URIRef(f"{EX}dataset-{index}/sparql"), graph,
                name=f"endpoint-{index}", latency=latency, seed=index,
            ),
        )
    return MediatorService(AlignmentStore(), registry, SameAsService(), max_workers=8)


def test_bench_e7b_parallel_speedup(benchmark):
    """Sequential vs concurrent wall-clock across endpoint counts."""

    def run_sweep():
        rows = []
        for n_endpoints in (1, 2, 4, 8):
            service = _build_federation(n_endpoints)
            sequential = service.federate(QUERY, parallel=False)
            parallel = service.federate(QUERY, parallel=True)
            assert sequential.merged().to_table() == parallel.merged().to_table()
            speedup = sequential.elapsed / max(parallel.elapsed, 1e-9)
            rows.append((n_endpoints, len(parallel.merged()),
                         sequential.elapsed, parallel.elapsed, speedup))
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        f"E7b: federated fan-out, {LATENCY * 1000:.0f} ms simulated latency per endpoint",
        [
            (n, merged, f"{seq:.3f}s", f"{par:.3f}s", f"{speedup:.1f}x")
            for n, merged, seq, par, speedup in rows
        ],
        headers=("endpoints", "merged rows", "sequential", "parallel", "speedup"),
    )
    by_count = {row[0]: row for row in rows}
    # Acceptance: >= 2x at 8 endpoints, byte-identical results (asserted
    # above).  The wall-clock assertion is skipped in --benchmark-disable
    # runs (CI import checks on shared runners), where scheduling jitter
    # would make a timing bound flaky.
    if not benchmark.disabled:
        assert by_count[8][4] >= 2.0
    # Merged rows grow with federation size (overlap collapsed).
    assert by_count[8][1] > by_count[1][1]


def test_bench_e7b_retry_resilience(benchmark):
    """Flaky endpoints (2 injected failures each) recover within retries."""
    service = _build_federation(4, latency=0.0)
    registry = service.registry
    baseline = service.federate(QUERY, parallel=False)
    for dataset in registry:
        dataset.endpoint.fail_next(2)
        registry.set_policy(dataset.uri, ExecutionPolicy(max_retries=2, backoff=0.0))

    result = benchmark.pedantic(
        lambda: service.federate(QUERY, parallel=True), rounds=1, iterations=1
    )
    rows = [
        (str(entry.dataset_uri), entry.attempts,
         "ok" if entry.succeeded else entry.error)
        for entry in result.per_dataset
    ]
    report("E7b: retry resilience (2 injected failures per endpoint)",
           rows, headers=("dataset", "attempts", "status"))
    assert not result.failed_datasets()
    assert result.merged().to_table() == baseline.merged().to_table()
    assert all(entry.attempts == 3 for entry in result.per_dataset)


def test_bench_e7b_circuit_breaker_saves_calls(benchmark):
    """A dead endpoint is only probed until its breaker opens."""
    service = _build_federation(4, latency=0.0)
    registry = service.registry
    dead = registry.datasets()[0]
    dead.endpoint.available = False
    registry.set_policy(dead.uri, ExecutionPolicy(failure_threshold=2, reset_timeout=60.0))

    def run_ten():
        attempts = 0
        for _ in range(10):
            outcome = service.federate(QUERY, parallel=True)
            entry = next(e for e in outcome.per_dataset if e.dataset_uri == dead.uri)
            attempts += entry.attempts
        return attempts

    attempts_on_dead = benchmark.pedantic(run_ten, rounds=1, iterations=1)
    report(
        "E7b: circuit breaker (dead endpoint, threshold 2, 10 federated queries)",
        [(str(dead.uri), attempts_on_dead, registry.health()[dead.uri])],
        headers=("dataset", "attempts", "breaker state"),
    )
    # Without the breaker the dead endpoint would be attempted 10 times;
    # with a threshold of 2 it is attempted exactly twice, then refused.
    assert attempts_on_dead == 2
    assert registry.health()[dead.uri] == "open"


def test_bench_e7b_merge_scales_with_sameas_index(benchmark):
    """Co-reference-aware merging stays fast with many bundles registered."""
    service = _build_federation(8, latency=0.0)
    sameas = service.sameas_service
    # Register many unrelated bundles; the indexed members() lookup keeps
    # per-row canonicalisation independent of the store size.
    for index in range(2000):
        sameas.add_equivalence(
            URIRef(f"{EX}noise-{index}"), URIRef(f"{EX}noise-{index}-alias")
        )

    started = time.perf_counter()
    result = benchmark.pedantic(
        lambda: service.federate(QUERY, parallel=True), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    report(
        "E7b: merge with 2000 unrelated sameAs bundles",
        [(len(result.merged()), result.total_rows, f"{elapsed:.3f}s")],
        headers=("merged rows", "raw rows", "wall-clock"),
    )
    assert len(result.merged()) == 45
    assert elapsed < 5.0
