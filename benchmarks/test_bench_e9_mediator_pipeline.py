"""E9 — Figure 5: end-to-end throughput of the three-tier mediator.

Figure 5 shows the deployed architecture: UI / REST API over the rewriting
engine and its two RDF knowledge bases, dispatching rewritten queries to
remote SPARQL endpoints.  This benchmark drives the same pipeline —
translate, dispatch, collect — through the :class:`MediatorService` facade
and reports per-stage latency and end-to-end throughput, plus the federated
fan-out cost over all three endpoints.
"""

from time import perf_counter

from .conftest import FIGURE_1_QUERY, report


def _coauthor_query(scenario):
    person_key = max(
        scenario.kisti_builder.covered_person_keys,
        key=lambda key: len(scenario.world.papers_of(key)),
    )
    person_uri = scenario.akt_person_uri(person_key)
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """


def test_bench_e9_translate_and_run(benchmark, scenario):
    """The UI's 'translate and run' button: one target endpoint."""
    query = _coauthor_query(scenario)

    response = benchmark(
        scenario.service.translate_and_run,
        query,
        scenario.kisti_dataset,
        scenario.source_ontology,
        "filter-aware",
    )
    assert response.row_count > 0
    assert "hasCreatorInfo" in response.translation.translated_query


def test_bench_e9_stage_breakdown(benchmark, scenario):
    """Latency split between translation and execution (informational)."""
    query = _coauthor_query(scenario)
    iterations = 25

    # The translation stage is registered with pytest-benchmark; the
    # execution stage is timed manually so the table can show both.
    mediation = benchmark(
        scenario.service.mediator.translate,
        query, scenario.kisti_dataset, scenario.source_ontology, "filter-aware",
    )
    start = perf_counter()
    for _ in range(iterations):
        scenario.service.mediator.translate(
            query, scenario.kisti_dataset, scenario.source_ontology, mode="filter-aware"
        )
    translate_time = (perf_counter() - start) / iterations

    endpoint = scenario.endpoint(scenario.kisti_dataset)
    rewritten = mediation.rewritten_query
    start = perf_counter()
    for _ in range(iterations):
        endpoint.select(rewritten)
    execute_time = (perf_counter() - start) / iterations

    report(
        "E9: mediator pipeline stage breakdown (KISTI target)",
        [
            ("translate (parse + rewrite + serialise-ready AST)", f"{translate_time * 1000:.2f} ms"),
            ("execute on endpoint", f"{execute_time * 1000:.2f} ms"),
            ("end-to-end", f"{(translate_time + execute_time) * 1000:.2f} ms"),
        ],
        headers=("stage", "mean latency"),
    )
    assert translate_time > 0 and execute_time > 0


def test_bench_e9_federated_fanout(benchmark, scenario):
    """Fan-out over every registered endpoint with result merging."""
    query = _coauthor_query(scenario)

    result = benchmark(
        scenario.service.federate,
        query,
        scenario.source_ontology,
        scenario.rkb_dataset,
        "filter-aware",
    )
    assert len(result.per_dataset) == 3
    assert not result.failed_datasets()

    rows = [
        (str(entry.dataset_uri), entry.row_count,
         "source (not rewritten)" if entry.mediation is None else "rewritten")
        for entry in result.per_dataset
    ]
    rows.append(("merged distinct entities", len(result.merged()), ""))
    report(
        "E9: federated fan-out over the three endpoints",
        rows,
        headers=("dataset", "rows", "how queried"),
    )


def test_bench_e9_translation_only_throughput(benchmark, scenario):
    """Raw translation throughput of the mediator (queries/second)."""
    result = benchmark(
        scenario.service.translate,
        FIGURE_1_QUERY,
        scenario.kisti_dataset,
        scenario.source_ontology,
    )
    assert result.triples_matched == 2
