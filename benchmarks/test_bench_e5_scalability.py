"""E5 — the scalability argument: rewriting vs. reasoning/materialisation.

Sections 1-2 argue that implementing integration by *reasoning over the
data* (materialising the alignment semantics) "is often hard to implement
and rarely scales on Web dimensions", whereas query rewriting only touches
the query.  This benchmark quantifies the contrast on the synthetic
scenario:

* rewrite cost is measured as a function of the target *data* size (it
  should stay flat) and of the alignment KB size (it grows mildly),
* materialisation cost is measured as a function of the data size (it grows
  linearly or worse).

Absolute numbers are environment specific; the *shape* (flat vs. growing)
is the reproduced claim.
"""

from time import perf_counter

from repro.baselines import MaterializationIntegrator
from repro.core import QueryRewriter
from repro.datasets import (
    KistiDatasetBuilder,
    RKB_URI_PATTERN,
    WorldModel,
    akt_to_kisti_alignment,
)
from repro.coreference import SameAsService
from repro.sparql import parse_query

from .conftest import FIGURE_1_QUERY, report

#: World sizes for the data-size sweep (papers; persons scale alongside).
DATA_SIZES = [50, 100, 200, 400]


def _build_world(n_papers: int):
    world = WorldModel(n_persons=max(10, n_papers // 3), n_papers=n_papers, seed=7)
    builder = KistiDatasetBuilder(world, coverage=1.0)
    graph = builder.build()
    sameas = SameAsService()
    akt_minter = __import__("repro.datasets", fromlist=["AktDatasetBuilder"]).AktDatasetBuilder(world)
    for person in world.persons:
        sameas.add_equivalence(akt_minter.person_uri(person.key), builder.person_uri(person.key))
    for paper in world.papers:
        sameas.add_equivalence(akt_minter.paper_uri(paper.key), builder.paper_uri(paper.key))
    return graph, sameas


def test_bench_e5_rewriting_cost_independent_of_data(benchmark):
    """Query rewriting latency does not depend on the target dataset size."""
    alignments = list(akt_to_kisti_alignment())
    query = parse_query(FIGURE_1_QUERY)
    rows = []
    timings = {}
    for n_papers in DATA_SIZES:
        graph, sameas = _build_world(n_papers)
        from repro.alignment import default_registry

        rewriter = QueryRewriter(alignments, default_registry(sameas))
        start = perf_counter()
        iterations = 50
        for _ in range(iterations):
            rewriter.rewrite(query)
        elapsed = (perf_counter() - start) / iterations
        timings[n_papers] = elapsed
        rows.append((n_papers, len(graph), f"{elapsed * 1000:.3f} ms"))

    report(
        "E5a: rewrite latency vs. target data size (expected: flat)",
        rows,
        headers=("papers in world", "target triples", "rewrite latency"),
    )
    # Shape check: going from the smallest to the largest dataset changes
    # rewriting cost by far less than the data grows (4x guard band).
    assert timings[DATA_SIZES[-1]] < timings[DATA_SIZES[0]] * 4

    # Register a representative timing with pytest-benchmark as well.
    graph, sameas = _build_world(DATA_SIZES[-1])
    from repro.alignment import default_registry

    rewriter = QueryRewriter(alignments, default_registry(sameas))
    benchmark(rewriter.rewrite, query)


def test_bench_e5_materialization_cost_grows_with_data(benchmark):
    """Materialisation work grows with the data it has to translate."""
    alignments = list(akt_to_kisti_alignment())
    rows = []
    derived = {}
    timings = {}
    for n_papers in DATA_SIZES:
        graph, sameas = _build_world(n_papers)
        integrator = MaterializationIntegrator(alignments, sameas, RKB_URI_PATTERN)
        start = perf_counter()
        materialized, stats = integrator.integrate([graph])
        elapsed = perf_counter() - start
        timings[n_papers] = elapsed
        derived[n_papers] = stats.derived_triples
        rows.append((n_papers, stats.input_triples, stats.derived_triples,
                     stats.rule_applications, f"{elapsed * 1000:.1f} ms"))

    report(
        "E5b: materialisation cost vs. data size (expected: growing)",
        rows,
        headers=("papers in world", "input triples", "derived triples",
                 "rule applications", "materialisation time"),
    )
    assert derived[DATA_SIZES[-1]] > derived[DATA_SIZES[0]] * 4
    assert timings[DATA_SIZES[-1]] > timings[DATA_SIZES[0]]

    graph, sameas = _build_world(DATA_SIZES[0])
    integrator = MaterializationIntegrator(alignments, sameas, RKB_URI_PATTERN)
    benchmark(lambda: integrator.integrate([graph]))


def test_bench_e5_rewriting_cost_vs_alignment_kb_size(benchmark):
    """Rewrite latency as a function of the number of alignments in the KB."""
    from repro.alignment import default_registry, property_alignment
    from repro.rdf import Namespace

    SRC = Namespace("http://example.org/src#")
    TGT = Namespace("http://example.org/tgt#")
    query = parse_query(FIGURE_1_QUERY)
    base_alignments = list(akt_to_kisti_alignment())

    rows = []
    timings = {}
    for extra in (0, 50, 200, 800):
        padding = [property_alignment(SRC[f"p{i}"], TGT[f"q{i}"]) for i in range(extra)]
        rewriter = QueryRewriter(padding + base_alignments, default_registry(SameAsService()))
        start = perf_counter()
        iterations = 20
        for _ in range(iterations):
            rewriter.rewrite(query)
        elapsed = (perf_counter() - start) / iterations
        timings[extra] = elapsed
        rows.append((24 + extra, f"{elapsed * 1000:.3f} ms"))

    report(
        "E5c: rewrite latency vs. alignment KB size (expected: mild growth)",
        rows,
        headers=("alignments in KB", "rewrite latency"),
    )
    # Growth is at most linear in the KB size (with generous constant).
    assert timings[800] < timings[0] * 200

    rewriter = QueryRewriter(base_alignments, default_registry(SameAsService()))
    benchmark(rewriter.rewrite, query)


def test_bench_e5_indexed_vs_linear_matching(benchmark):
    """KB-size sweep: indexed matching vs. the reference linear scan.

    The PatternIndex makes per-triple candidate lookup O(1)-ish in the KB
    size, so BGP rewriting cost should stay flat where the linear scan
    grows linearly.  The acceptance bar is a >=5x speedup at 1000
    alignments.
    """
    from repro.alignment import default_registry, property_alignment
    from repro.core import GraphPatternRewriter
    from repro.rdf import Namespace

    SRC = Namespace("http://example.org/src#")
    TGT = Namespace("http://example.org/tgt#")
    base_alignments = list(akt_to_kisti_alignment())
    query = parse_query(FIGURE_1_QUERY)
    patterns = next(iter(query.triples_blocks())).patterns

    def time_rewriter(rewriter, iterations):
        # Best of three repeats: the minimum is the least noise-inflated
        # estimate, keeping the speedup assertion stable on busy CI runners.
        best = float("inf")
        for _ in range(3):
            start = perf_counter()
            for _ in range(iterations):
                rewriter.rewrite_bgp(patterns)
            best = min(best, (perf_counter() - start) / iterations)
        return best

    rows = []
    speedups = {}
    for extra in (0, 100, 1000):
        padding = [property_alignment(SRC[f"p{i}"], TGT[f"q{i}"]) for i in range(extra)]
        alignments = padding + base_alignments
        registry = default_registry(SameAsService())
        linear = GraphPatternRewriter(alignments, registry, use_index=False)
        indexed = GraphPatternRewriter(alignments, registry, use_index=True)
        iterations = 200 if extra < 1000 else 50
        linear_time = time_rewriter(linear, iterations)
        indexed_time = time_rewriter(indexed, iterations)
        speedups[extra] = linear_time / indexed_time
        rows.append((
            24 + extra,
            f"{linear_time * 1e6:.1f} us",
            f"{indexed_time * 1e6:.1f} us",
            f"{speedups[extra]:.1f}x",
        ))

    report(
        "E5d: indexed vs. linear matching vs. alignment KB size",
        rows,
        headers=("alignments in KB", "linear scan", "indexed", "speedup"),
    )
    # The acceptance criterion: the index beats the scan >=5x at ~1000
    # alignments (in practice the gap is one-to-two orders of magnitude).
    assert speedups[1000] >= 5.0

    padding = [property_alignment(SRC[f"p{i}"], TGT[f"q{i}"]) for i in range(1000)]
    indexed = GraphPatternRewriter(padding + base_alignments,
                                   default_registry(SameAsService()))
    benchmark(indexed.rewrite_bgp, patterns)
