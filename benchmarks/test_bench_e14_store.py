"""E14 — the disk-backed segment store vs. the in-memory baseline.

PR 10 moves storage behind an explicit ``Store`` API with two backends:
the original in-memory ``MemoryStore`` and the persistent ``SegmentStore``
(immutable sorted SPO/POS/OSP segment files plus a small write buffer).
This experiment quantifies what that costs and what it buys, with a sweep
over graph size:

* predicate-scan and star-join latency, memory vs. disk,
* cold-open time — reopening a store must replay only the term
  dictionary and segment metadata, never the triples themselves,
* bounded I/O under LIMIT — a disk-backed ``LIMIT``-ed BGP query must
  complete after reading a small prefix of one segment range, not the
  full dataset.

The headline claims pinned here: cold open performs **zero** triple-record
reads, and the LIMIT-ed scan touches well under a tenth of the stored
records.  Disk scans are expected to be slower than memory (they pay
``os.pread`` plus struct decoding per chunk); the sweep records by how
much so regressions in either backend show up in the perf job.
"""

from __future__ import annotations

from time import perf_counter

from repro.rdf import Graph, SegmentStore, Triple, URIRef
from repro.sparql import ExecConfig, QueryEvaluator, parse_query

from .conftest import report

BENCH = "http://bench.example/store/"

#: Entities per sweep point; each contributes three triples (type, a
#: selective property and a knows-edge), so sizes are 3x these counts.
SWEEP_ENTITIES = (1_000, 4_000, 10_000)
VALUE_BUCKETS = 53


def fill(graph: Graph, entities: int) -> Graph:
    for i in range(entities):
        subject = URIRef(f"{BENCH}entity{i}")
        graph.add(Triple(subject, URIRef(f"{BENCH}group"),
                         URIRef(f"{BENCH}g{i % VALUE_BUCKETS}")))
        graph.add(Triple(subject, URIRef(f"{BENCH}rank"),
                         URIRef(f"{BENCH}r{i % 7}")))
        graph.add(Triple(subject, URIRef(f"{BENCH}knows"),
                         URIRef(f"{BENCH}entity{(i + 1) % entities}")))
    return graph


def build_segment_graph(root, entities: int) -> Graph:
    graph = fill(Graph(store=SegmentStore(root)), entities)
    graph.flush()
    return graph


SCAN_QUERY = parse_query(
    f"SELECT ?s ?g WHERE {{ ?s <{BENCH}group> ?g }}")
JOIN_QUERY = parse_query(
    f"SELECT ?s ?g ?r WHERE {{ ?s <{BENCH}group> ?g . ?s <{BENCH}rank> ?r }}")
LIMIT_QUERY = parse_query(
    f"SELECT ?s ?g WHERE {{ ?s <{BENCH}group> ?g }} LIMIT 10")


def _time(evaluator: QueryEvaluator, query, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = perf_counter()
        evaluator.select(query)
        best = min(best, perf_counter() - start)
    return best


def test_bench_e14_store_sweep(benchmark, tmp_path):
    """Scan/join latency x graph size, both backends, identical answers."""
    rows = []
    for entities in SWEEP_ENTITIES:
        memory = fill(Graph(), entities)
        disk = build_segment_graph(tmp_path / f"sweep-{entities}", entities)
        assert len(disk) == len(memory)

        memory_eval = QueryEvaluator(memory, engine="planner")
        disk_eval = QueryEvaluator(disk, engine="planner")
        scan_pair = (_time(memory_eval, SCAN_QUERY), _time(disk_eval, SCAN_QUERY))
        join_pair = (_time(memory_eval, JOIN_QUERY), _time(disk_eval, JOIN_QUERY))

        # Both backends must produce the same solution multiset.
        want = sorted(map(repr, memory_eval.select(JOIN_QUERY)))
        assert sorted(map(repr, disk_eval.select(JOIN_QUERY))) == want

        rows.append((
            len(memory),
            f"{scan_pair[0] * 1000:.2f} ms", f"{scan_pair[1] * 1000:.2f} ms",
            f"{join_pair[0] * 1000:.2f} ms", f"{join_pair[1] * 1000:.2f} ms",
            f"{join_pair[1] / join_pair[0]:.1f}x" if join_pair[0] else "-",
        ))
        disk.close()

    report(
        "E14: in-memory vs. disk-backed scan/join latency",
        rows,
        headers=("triples", "scan mem", "scan disk",
                 "join mem", "join disk", "disk/mem"),
    )

    # Track the disk-backed star join at the largest sweep point.
    disk = build_segment_graph(tmp_path / "headline", SWEEP_ENTITIES[-1])
    disk_eval = QueryEvaluator(disk, engine="planner")
    try:
        benchmark(lambda: disk_eval.select(JOIN_QUERY))
    finally:
        disk.close()


def test_bench_e14_cold_open_reads_no_records(benchmark, tmp_path):
    """Reopening a store is rebuild-free: metadata only, zero triple reads."""
    root = tmp_path / "cold"
    built = build_segment_graph(root, SWEEP_ENTITIES[-1])
    expected = len(built)
    built.close()

    opens = []

    def cold_open() -> None:
        start = perf_counter()
        store = SegmentStore(root)
        opens.append((perf_counter() - start, len(store), store.io.records_read))
        store.close()

    benchmark(cold_open)

    for elapsed, triples, records_read in opens:
        assert triples == expected
        # The headline persistence claim: opening replays the term
        # dictionary and per-segment metadata but never a triple record.
        assert records_read == 0, f"cold open read {records_read} records"
    report(
        "E14: cold open (rebuild-free restart)",
        [(expected, f"{min(e for e, _, _ in opens) * 1000:.2f} ms", 0)],
        headers=("triples", "best open", "records read"),
    )


def test_bench_e14_limit_query_io_is_bounded(tmp_path):
    """A LIMIT-ed BGP on disk completes without loading the full dataset."""
    entities = SWEEP_ENTITIES[-1]
    root = tmp_path / "limited"
    build_segment_graph(root, entities).close()

    graph = Graph(store=SegmentStore(root))
    total = len(graph)
    # Small batches keep the slice from over-pulling the scan generator.
    evaluator = QueryEvaluator(graph, engine="planner",
                               exec_config=ExecConfig(max_batch_rows=64))
    before = graph.store.io.records_read
    solutions = evaluator.select(LIMIT_QUERY)
    records_read = graph.store.io.records_read - before
    graph.close()

    assert len(solutions) == 10
    assert records_read < total // 10, (
        f"LIMIT-ed scan read {records_read} of {total} records")
    report(
        "E14: bounded I/O under LIMIT",
        [(total, 10, records_read)],
        headers=("stored triples", "rows returned", "records read"),
    )
