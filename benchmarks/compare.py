#!/usr/bin/env python3
"""Compare a pytest-benchmark JSON run against the committed baseline.

The CI perf job runs the benchmark suite with ``--benchmark-json=bench.json``
and then::

    python benchmarks/compare.py BENCH_BASELINE.json bench.json

Exit status 1 means a *tracked hot path* regressed beyond the tolerance
(default: 2x the baseline mean, overridable per invocation and per
baseline file).  Benchmarks faster than ``min_seconds`` in both runs are
ignored — micro-timings below that floor are scheduler noise, not signal.

Baseline maintenance::

    python benchmarks/compare.py BENCH_BASELINE.json bench.json --update

refreshes the recorded means for the tracked benchmarks (and, for a brand
new baseline, seeds the tracked set from ``--track`` glob patterns).

Run-event attribution::

    REPRO_RUN_EVENTS=events.jsonl pytest benchmarks ...
    python benchmarks/compare.py BENCH_BASELINE.json bench.json --events events.jsonl

appends a per-operator time attribution digest built from the batched
executor's structured run events (see ``repro.sparql.exec.QueryRunEvent``):
which operators the benchmark time went to, how often adaptive reordering
fired, and how many rows each federation endpoint shipped.  ``--events``
alone (without baseline/run) prints just the digest.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path


DEFAULT_TOLERANCE = 2.0
#: Benchmarks whose mean is below this in both runs are never flagged.
DEFAULT_MIN_SECONDS = 0.005


class CompareError(SystemExit):
    """A comparison input is unusable; carries a human-readable message."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}", file=sys.stderr)
        super().__init__(1)


def load_baseline(path: Path) -> dict:
    if not path.exists():
        return {
            "tolerance": DEFAULT_TOLERANCE,
            "min_seconds": DEFAULT_MIN_SECONDS,
            "benchmarks": {},
        }
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CompareError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(baseline, dict) or not isinstance(baseline.get("benchmarks"), dict):
        raise CompareError(
            f"{path} is not a baseline file: expected a JSON object with a "
            f"\"benchmarks\" mapping of tracked names to mean seconds"
        )
    return baseline


def load_run(path: Path) -> dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CompareError(f"{path} is not valid JSON: {exc}") from exc
    means: dict[str, float] = {}
    for index, entry in enumerate(payload.get("benchmarks", [])):
        try:
            means[entry["name"]] = float(entry["stats"]["mean"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CompareError(
                f"{path}: benchmark entry #{index} lacks the expected "
                f"name/stats.mean shape — is this really a pytest-benchmark "
                f"--benchmark-json file?"
            ) from exc
    return means


def load_events(path: Path) -> list:
    """Parse a ``REPRO_RUN_EVENTS`` JSONL file into a list of event dicts.

    Trace spans (``"kind": "span"`` lines, rendered by ``repro-trace``)
    share the file with run events and are skipped here.
    """
    if not path.exists():
        raise CompareError(f"{path}: run-events file does not exist — did the "
                           f"benchmark run export REPRO_RUN_EVENTS={path}?")
    events = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CompareError(f"{path}:{number}: not valid JSON: {exc}") from exc
        if isinstance(event, dict) and event.get("kind") == "span":
            continue
        if not isinstance(event, dict) or "engine" not in event:
            raise CompareError(
                f"{path}:{number}: not a run event — expected a JSON object "
                f"with engine/rows/operators keys (REPRO_RUN_EVENTS output)"
            )
        events.append(event)
    if not events:
        raise CompareError(f"{path}: no run events recorded")
    return events


def summarize_events(path: Path, top: int = 12) -> None:
    """Print the per-operator time attribution digest for a run-events file."""
    events = load_events(path)
    per_engine: dict[str, int] = {}
    operator_seconds: dict[str, float] = {}
    operator_rows: dict[str, int] = {}
    endpoint_rows: dict[str, int] = {}
    total_elapsed = 0.0
    total_rows = 0
    reorders = 0
    for event in events:
        per_engine[event["engine"]] = per_engine.get(event["engine"], 0) + 1
        total_elapsed += float(event.get("elapsed", 0.0))
        total_rows += int(event.get("rows", 0))
        reorders += len(event.get("adaptivity", []))
        for op in event.get("operators", []):
            name = str(op.get("operator", "?")).split(" est=")[0]
            operator_seconds[name] = operator_seconds.get(name, 0.0) + float(
                op.get("seconds", 0.0)
            )
            operator_rows[name] = operator_rows.get(name, 0) + int(op.get("rows_out", 0))
        for entry in event.get("endpoints", []):
            uri = str(entry.get("dataset", entry.get("endpoint", "?")))
            endpoint_rows[uri] = endpoint_rows.get(uri, 0) + int(
                entry.get("rows_shipped", 0)
            )
    engines = ", ".join(f"{name} x{count}" for name, count in sorted(per_engine.items()))
    print(f"\nrun-event digest from {path}:")
    print(f"  {len(events)} queries ({engines}); {total_rows} rows in "
          f"{total_elapsed * 1000:.1f} ms; {reorders} adaptive reorder(s)")
    ranked = sorted(operator_seconds.items(), key=lambda item: -item[1])
    if ranked:
        width = max(len(name) for name, _ in ranked[:top])
        print("  time by operator (inclusive):")
        for name, seconds in ranked[:top]:
            share = seconds / total_elapsed * 100 if total_elapsed else 0.0
            print(f"    {name:<{width}}  {seconds * 1000:9.2f} ms  ({share:5.1f}%)  "
                  f"{operator_rows[name]} rows")
        if len(ranked) > top:
            print(f"    ... and {len(ranked) - top} more operator(s)")
    if endpoint_rows:
        print("  rows shipped by endpoint:")
        for uri, rows in sorted(endpoint_rows.items(), key=lambda item: -item[1]):
            print(f"    {uri}: {rows}")


def update_baseline(
    baseline_path: Path,
    current: dict[str, float],
    track: list | None,
    tolerance: float | None,
) -> int:
    baseline = load_baseline(baseline_path)
    tracked = set(baseline["benchmarks"])
    if not tracked:
        patterns = track or ["*"]
        tracked = {
            name for name in current
            if any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
        }
    missing = sorted(name for name in tracked if name not in current)
    if missing:
        print("error: tracked benchmarks absent from the run:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1
    baseline["benchmarks"] = {name: current[name] for name in sorted(tracked)}
    if tolerance is not None:
        baseline["tolerance"] = tolerance
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"baseline updated: {len(tracked)} tracked benchmarks -> {baseline_path}")
    return 0


def compare(baseline_path: Path, run_path: Path, tolerance: float | None) -> int:
    baseline = load_baseline(baseline_path)
    current = load_run(run_path)
    effective_tolerance = tolerance or float(
        baseline.get("tolerance", DEFAULT_TOLERANCE)
    )
    min_seconds = float(baseline.get("min_seconds", DEFAULT_MIN_SECONDS))

    if not baseline["benchmarks"]:
        print(f"error: {baseline_path} tracks no benchmarks; "
              f"seed it with --update --track PATTERN", file=sys.stderr)
        return 1

    regressions = []
    missing = []
    width = max(len(name) for name in baseline["benchmarks"])
    print(f"perf comparison vs {baseline_path} "
          f"(tolerance {effective_tolerance:g}x, floor {min_seconds * 1000:g} ms)")
    for name, recorded in sorted(baseline["benchmarks"].items()):
        measured = current.get(name)
        if measured is None:
            missing.append(name)
            print(f"  {name:<{width}}  MISSING from current run")
            continue
        ratio = measured / recorded if recorded > 0 else float("inf")
        verdict = "ok"
        if measured > max(recorded * effective_tolerance, min_seconds):
            verdict = "REGRESSION"
            regressions.append((name, recorded, measured, ratio))
        print(f"  {name:<{width}}  {recorded * 1000:9.2f} ms -> "
              f"{measured * 1000:9.2f} ms  ({ratio:5.2f}x)  {verdict}")

    if missing:
        print(f"\n{len(missing)} tracked benchmark(s) missing — "
              "did a hot path get renamed without updating the baseline?",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} tracked hot path(s) regressed "
              f"beyond {effective_tolerance:g}x:", file=sys.stderr)
        for name, recorded, measured, ratio in regressions:
            print(f"  {name}: {recorded * 1000:.2f} ms -> "
                  f"{measured * 1000:.2f} ms ({ratio:.2f}x)", file=sys.stderr)
        return 1
    print("\nall tracked hot paths within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, nargs="?", default=None,
                        help="committed BENCH_BASELINE.json")
    parser.add_argument("run", type=Path, nargs="?", default=None,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="regression threshold as a multiple of the baseline mean")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the run instead of comparing")
    parser.add_argument("--track", nargs="*", default=None, metavar="GLOB",
                        help="with --update on a fresh baseline: benchmark name "
                             "patterns to track")
    parser.add_argument("--events", type=Path, default=None, metavar="JSONL",
                        help="REPRO_RUN_EVENTS output: append a per-operator "
                             "time attribution digest (usable on its own)")
    arguments = parser.parse_args(argv)
    if arguments.baseline is None and arguments.events is None:
        parser.error("nothing to do: pass BASELINE RUN to compare, "
                     "and/or --events JSONL to digest run events")
    if arguments.baseline is not None and arguments.run is None:
        parser.error("a baseline needs a run to compare against")
    status = 0
    if arguments.baseline is not None:
        if arguments.update:
            status = update_baseline(arguments.baseline, load_run(arguments.run),
                                     arguments.track, arguments.tolerance)
        else:
            status = compare(arguments.baseline, arguments.run, arguments.tolerance)
    if arguments.events is not None:
        summarize_events(arguments.events)
    return status


if __name__ == "__main__":
    sys.exit(main())
