#!/usr/bin/env python3
"""Compare a pytest-benchmark JSON run against the committed baseline.

The CI perf job runs the benchmark suite with ``--benchmark-json=bench.json``
and then::

    python benchmarks/compare.py BENCH_BASELINE.json bench.json

Exit status 1 means a *tracked hot path* regressed beyond the tolerance
(default: 2x the baseline mean, overridable per invocation and per
baseline file).  Benchmarks faster than ``min_seconds`` in both runs are
ignored — micro-timings below that floor are scheduler noise, not signal.

Baseline maintenance::

    python benchmarks/compare.py BENCH_BASELINE.json bench.json --update

refreshes the recorded means for the tracked benchmarks (and, for a brand
new baseline, seeds the tracked set from ``--track`` glob patterns).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path
from typing import Dict, Optional

DEFAULT_TOLERANCE = 2.0
#: Benchmarks whose mean is below this in both runs are never flagged.
DEFAULT_MIN_SECONDS = 0.005


def load_baseline(path: Path) -> dict:
    if not path.exists():
        return {
            "tolerance": DEFAULT_TOLERANCE,
            "min_seconds": DEFAULT_MIN_SECONDS,
            "benchmarks": {},
        }
    return json.loads(path.read_text(encoding="utf-8"))


def load_run(path: Path) -> Dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    means: Dict[str, float] = {}
    for entry in payload.get("benchmarks", []):
        means[entry["name"]] = float(entry["stats"]["mean"])
    return means


def update_baseline(
    baseline_path: Path,
    current: Dict[str, float],
    track: Optional[list],
    tolerance: Optional[float],
) -> int:
    baseline = load_baseline(baseline_path)
    tracked = set(baseline["benchmarks"])
    if not tracked:
        patterns = track or ["*"]
        tracked = {
            name for name in current
            if any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
        }
    missing = sorted(name for name in tracked if name not in current)
    if missing:
        print("error: tracked benchmarks absent from the run:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1
    baseline["benchmarks"] = {name: current[name] for name in sorted(tracked)}
    if tolerance is not None:
        baseline["tolerance"] = tolerance
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"baseline updated: {len(tracked)} tracked benchmarks -> {baseline_path}")
    return 0


def compare(baseline_path: Path, run_path: Path, tolerance: Optional[float]) -> int:
    baseline = load_baseline(baseline_path)
    current = load_run(run_path)
    effective_tolerance = tolerance or float(
        baseline.get("tolerance", DEFAULT_TOLERANCE)
    )
    min_seconds = float(baseline.get("min_seconds", DEFAULT_MIN_SECONDS))

    if not baseline["benchmarks"]:
        print(f"error: {baseline_path} tracks no benchmarks; "
              f"seed it with --update --track PATTERN", file=sys.stderr)
        return 1

    regressions = []
    missing = []
    width = max(len(name) for name in baseline["benchmarks"])
    print(f"perf comparison vs {baseline_path} "
          f"(tolerance {effective_tolerance:g}x, floor {min_seconds * 1000:g} ms)")
    for name, recorded in sorted(baseline["benchmarks"].items()):
        measured = current.get(name)
        if measured is None:
            missing.append(name)
            print(f"  {name:<{width}}  MISSING from current run")
            continue
        ratio = measured / recorded if recorded > 0 else float("inf")
        verdict = "ok"
        if measured > max(recorded * effective_tolerance, min_seconds):
            verdict = "REGRESSION"
            regressions.append((name, recorded, measured, ratio))
        print(f"  {name:<{width}}  {recorded * 1000:9.2f} ms -> "
              f"{measured * 1000:9.2f} ms  ({ratio:5.2f}x)  {verdict}")

    if missing:
        print(f"\n{len(missing)} tracked benchmark(s) missing — "
              "did a hot path get renamed without updating the baseline?",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} tracked hot path(s) regressed "
              f"beyond {effective_tolerance:g}x:", file=sys.stderr)
        for name, recorded, measured, ratio in regressions:
            print(f"  {name}: {recorded * 1000:.2f} ms -> "
                  f"{measured * 1000:.2f} ms ({ratio:.2f}x)", file=sys.stderr)
        return 1
    print("\nall tracked hot paths within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_BASELINE.json")
    parser.add_argument("run", type=Path, help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="regression threshold as a multiple of the baseline mean")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the run instead of comparing")
    parser.add_argument("--track", nargs="*", default=None, metavar="GLOB",
                        help="with --update on a fresh baseline: benchmark name "
                             "patterns to track")
    arguments = parser.parse_args(argv)
    if arguments.update:
        return update_baseline(arguments.baseline, load_run(arguments.run),
                               arguments.track, arguments.tolerance)
    return compare(arguments.baseline, arguments.run, arguments.tolerance)


if __name__ == "__main__":
    sys.exit(main())
