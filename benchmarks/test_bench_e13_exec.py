"""E13 — the batched execution core: the dict-overhead win on multi-joins.

Every engine (naive, planner, decomposer) now funnels through the batched
operator layer of :mod:`repro.sparql.exec`: solution rows are fixed-width
tuples of dictionary ids and scans run against the graph's id-level
permutation indexes, so the join hot loop never hashes a term, never
constructs a ``Triple`` and never touches a per-row ``dict``.  This
experiment quantifies that win against the dict-at-a-time reference
evaluator with a sweep over

* join fan-in (number of star-join patterns sharing ``?s``),
* batch size cap (small batches vs. the default),
* adaptive join reordering (on or off),

and pins the headline claim: on the fan-in-6 multi-join hot path the
batched planner engine is at least 3x faster than the reference
evaluator, with identical solution multisets.
"""

from __future__ import annotations

from time import perf_counter

from repro.rdf import Graph, Triple, URIRef
from repro.sparql import ExecConfig, QueryEvaluator, parse_query

from .conftest import report

BENCH = "http://bench.example/"

#: Entities in the sweep graphs; each contributes ``fan-in`` triples.
ENTITIES = 3_000
FAN_INS = (2, 4, 6)
#: Distinct object values per predicate — keeps joins selective but real.
VALUE_BUCKETS = 97


def build_graph(fan_in: int) -> Graph:
    graph = Graph()
    for i in range(ENTITIES):
        subject = URIRef(f"{BENCH}entity{i}")
        for k in range(fan_in):
            graph.add(Triple(
                subject,
                URIRef(f"{BENCH}p{k}"),
                URIRef(f"{BENCH}v{k}-{i % VALUE_BUCKETS}"),
            ))
    return graph


def star_query(fan_in: int):
    patterns = " . ".join(f"?s <{BENCH}p{k}> ?o{k}" for k in range(fan_in))
    return parse_query(f"SELECT * WHERE {{ {patterns} }}")


def _time(evaluator: QueryEvaluator, query, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = perf_counter()
        evaluator.select(query)
        best = min(best, perf_counter() - start)
    return best


def test_bench_e13_exec_sweep(benchmark):
    """Sweep fan-in x batch cap x adaptivity; check the >= 3x headline."""
    configs = (
        ("batch=64",   ExecConfig(max_batch_rows=64)),
        ("batch=2048", ExecConfig()),
        ("no-adapt",   ExecConfig(adaptive=False)),
    )
    rows = []
    headline_speedup = None
    for fan_in in FAN_INS:
        graph = build_graph(fan_in)
        query = star_query(fan_in)
        reference_time = _time(QueryEvaluator(graph, engine="reference"), query)
        vec_times = []
        for _, config in configs:
            vec = QueryEvaluator(graph, engine="planner", exec_config=config)
            vec_times.append(_time(vec, query))
        default_speedup = reference_time / vec_times[1] if vec_times[1] else float("inf")
        rows.append((
            fan_in, len(graph),
            f"{reference_time * 1000:.2f} ms",
            *(f"{seconds * 1000:.2f} ms" for seconds in vec_times),
            f"{default_speedup:.1f}x",
        ))
        if fan_in == FAN_INS[-1]:
            headline_speedup = default_speedup

    report(
        "E13: dict-at-a-time reference vs. batched id-native executor",
        rows,
        headers=("fan-in", "triples", "reference",
                 *(label for label, _ in configs), "speedup"),
    )

    # Headline claim: the fan-in-6 star join runs >= 3x faster batched,
    # because scans stay in integer space end to end.
    assert headline_speedup is not None
    assert headline_speedup >= 3.0, f"expected >= 3x, measured {headline_speedup:.1f}x"

    # Register the headline measurement with pytest-benchmark.
    graph = build_graph(FAN_INS[-1])
    query = star_query(FAN_INS[-1])
    vec = QueryEvaluator(graph, engine="planner")
    benchmark(lambda: vec.select(query))


def test_bench_e13_results_equivalent():
    """Reference and batched engines agree on every sweep query."""
    for fan_in in FAN_INS:
        graph = build_graph(fan_in)
        query = star_query(fan_in)
        reference = sorted(map(repr, QueryEvaluator(graph, engine="reference").select(query)))
        for engine in ("planner", "naive"):
            batched = sorted(map(repr, QueryEvaluator(graph, engine=engine).select(query)))
            assert batched == reference


def test_bench_e13_adaptivity_costs_nothing_when_estimates_hold():
    """With accurate statistics, adaptive sampling must stay in the noise."""
    graph = build_graph(4)
    query = star_query(4)
    adaptive = _time(QueryEvaluator(graph, engine="planner",
                                    exec_config=ExecConfig(adaptive=True)), query)
    fixed = _time(QueryEvaluator(graph, engine="planner",
                                 exec_config=ExecConfig(adaptive=False)), query)
    report(
        "E13b: adaptive sampling overhead",
        [(len(graph), f"{fixed * 1000:.2f} ms", f"{adaptive * 1000:.2f} ms")],
        headers=("triples", "fixed order", "adaptive"),
    )
    # Sampling eight rows per step is bounded work; allow generous noise.
    assert adaptive <= fixed * 2.0
