"""E2 — Figure 2 + the Section 3.2.2 Turtle listing: the entity alignment.

The paper presents the ``akt:has-author`` → ``kisti:hasCreatorInfo /
hasCreator`` alignment twice: as the graphical rewriting rule of Figure 2
and as its RDF encoding (reified statements + an ``rdf:List`` of functional
dependency parameters).  This benchmark rebuilds the alignment, serialises
it to the RDF encoding, parses it back and checks that nothing is lost.
"""

from repro.alignment import (
    alignments_from_graph,
    alignments_to_graph,
    alignments_to_turtle,
    classify_level,
    structurally_equivalent,
)
from repro.rdf import MAP, RDF

from .conftest import report


def test_bench_e2_rdf_roundtrip(benchmark, worked_example_alignment):
    def roundtrip():
        graph = alignments_to_graph([worked_example_alignment])
        return graph, alignments_from_graph(graph)

    graph, restored = benchmark(roundtrip)

    assert len(restored) == 1
    assert structurally_equivalent(restored[0], worked_example_alignment)

    statement_nodes = list(graph.subjects(RDF.type, RDF.Statement))
    alignment_nodes = list(graph.subjects(RDF.type, MAP.EntityAlignment))
    report(
        "E2: Figure 2 alignment, RDF encoding round trip",
        [
            ("LHS patterns", len(worked_example_alignment.lhs.as_tuple()) // 3),
            ("RHS patterns", len(worked_example_alignment.rhs)),
            ("functional dependencies", len(worked_example_alignment.functional_dependencies)),
            ("expressivity level", classify_level(worked_example_alignment)),
            ("map:EntityAlignment nodes", len(alignment_nodes)),
            ("reified rdf:Statement nodes", len(statement_nodes)),
            ("triples in RDF encoding", len(graph)),
            ("round trip preserved", structurally_equivalent(restored[0], worked_example_alignment)),
        ],
        headers=("quantity", "value"),
    )


def test_bench_e2_turtle_listing(benchmark, worked_example_alignment):
    """The Turtle rendering mirrors the structure of the paper's listing."""
    text = benchmark(alignments_to_turtle, [worked_example_alignment])
    assert "map:EntityAlignment" in text
    assert "map:lhs" in text
    assert "map:rhs" in text
    assert "map:hasFunctionalDependency" in text
    assert "rdf:Statement" in text
    # One reified statement per LHS (1), RHS (2) and FD (2) entry.
    assert text.count("rdf:subject") == 5
    assert text.count("rdf:predicate") == 5
