"""E1 — Figure 1: anatomy of the co-author SELECT query.

The paper decomposes the Figure 1 query into its *query result form*
(``SELECT DISTINCT ?a``), its *Basic Graph Pattern* (two ``akt:has-author``
triple patterns) and its *FILTER section* (``!(?a = id:person-02686)``).
This benchmark parses the exact query, reproduces that decomposition and
measures parser throughput.
"""

from repro.rdf import AKT, RKB_ID, Variable
from repro.sparql import SelectQuery, parse_query, serialize_query

from .conftest import FIGURE_1_QUERY, report


def test_bench_e1_parse_figure1(benchmark):
    query = benchmark(parse_query, FIGURE_1_QUERY)

    assert isinstance(query, SelectQuery)
    assert query.modifiers.distinct
    assert query.projection == [Variable("a")]

    patterns = query.all_triple_patterns()
    assert len(patterns) == 2
    assert all(pattern.predicate == AKT["has-author"] for pattern in patterns)
    assert patterns[0].object == RKB_ID["person-02686"]
    assert patterns[1].object == Variable("a")

    filters = list(query.filters())
    assert len(filters) == 1

    report(
        "E1: Figure 1 query anatomy",
        [
            ("query result form", "SELECT DISTINCT ?a"),
            ("BGP triple patterns", len(patterns)),
            ("BGP predicates", "akt:has-author (x2)"),
            ("FILTER constraints", len(filters)),
            ("declared prefixes", len(list(query.prologue.namespace_manager.namespaces()))),
        ],
        headers=("component", "value"),
    )


def test_bench_e1_parse_serialize_roundtrip(benchmark):
    """Parsing the serialised form reproduces the same anatomy (stability)."""

    def roundtrip():
        return parse_query(serialize_query(parse_query(FIGURE_1_QUERY)))

    query = benchmark(roundtrip)
    assert len(query.all_triple_patterns()) == 2
    assert len(list(query.filters())) == 1
