"""E6 — the recall motivation of the introduction.

"The data repositories can contain redundant data, therefore it is
important to query all the available repositories in order to increase the
recall of the information retrieval task."  This benchmark measures recall
of the co-author query under three strategies — single source, naive
(no-rewriting) federation, mediated (rewriting) federation — against the
world-model gold standard, for several query subjects.
"""

import statistics

from repro.baselines import IdentityFederation
from repro.federation import recall

from .conftest import report


def _coauthor_query(scenario, person_uri) -> str:
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """


def _query_subjects(scenario, count: int = 5):
    """The most prolific authors (they have non-trivial gold co-author sets)."""
    by_papers = sorted(
        scenario.world.persons,
        key=lambda person: -len(scenario.world.papers_of(person.key)),
    )
    return [person.key for person in by_papers[:count]]


def test_bench_e6_recall_comparison(benchmark, scenario):
    subjects = _query_subjects(scenario)

    def run_all():
        outcome = []
        for person_key in subjects:
            person_uri = scenario.akt_person_uri(person_key)
            query = _coauthor_query(scenario, person_uri)
            gold = scenario.gold_coauthor_uris(person_key)

            single = scenario.endpoint(scenario.rkb_dataset).select(query)
            naive = IdentityFederation(scenario.registry).execute(query)
            federated = scenario.service.federate(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
            )
            outcome.append((
                person_key,
                len(gold),
                recall(single.distinct_values("a"), gold),
                recall(naive.distinct_values("a"), gold),
                recall(federated.distinct_values("a"), gold),
            ))
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (key, gold_size, f"{r_single:.2f}", f"{r_naive:.2f}", f"{r_federated:.2f}")
        for key, gold_size, r_single, r_naive, r_federated in outcome
    ]
    mean_single = statistics.mean(row[2] for row in outcome)
    mean_naive = statistics.mean(row[3] for row in outcome)
    mean_federated = statistics.mean(row[4] for row in outcome)
    rows.append(("mean", "-", f"{mean_single:.2f}", f"{mean_naive:.2f}", f"{mean_federated:.2f}"))

    report(
        "E6: co-author recall — single source vs naive vs rewriting federation",
        rows,
        headers=("person", "gold co-authors", "RKB only", "no rewriting", "rewriting federation"),
    )

    # Shape of the claim: rewriting federation dominates, naive federation
    # adds nothing over the single source.
    assert mean_federated > mean_single
    assert abs(mean_naive - mean_single) < 1e-9
    assert mean_federated >= mean_single + 0.1


def test_bench_e6_per_dataset_contribution(benchmark, scenario):
    """How many co-author rows each repository contributes after rewriting."""
    person_key = _query_subjects(scenario, 1)[0]
    person_uri = scenario.akt_person_uri(person_key)
    federated = benchmark(
        scenario.service.federate,
        _coauthor_query(scenario, person_uri),
        scenario.source_ontology,
        scenario.rkb_dataset,
        "filter-aware",
    )
    rows = [
        (str(entry.dataset_uri), entry.row_count, "ok" if entry.succeeded else entry.error)
        for entry in federated.per_dataset
    ]
    rows.append(("merged (distinct entities)", len(federated.merged()), ""))
    report(
        "E6: per-dataset contribution for one query subject",
        rows,
        headers=("dataset", "rows", "status"),
    )
    assert sum(entry.row_count for entry in federated.per_dataset) >= len(federated.merged())
