"""E7 — Figure 6 + Section 4: the FILTER limitation and its remedies.

The same co-author constraint can be written in the BGP (Figure 1) or in
the FILTER (Figure 6).  The paper's BGP-only algorithm misses the latter —
"part of the information needed for a correct rewriting [is] put in a part
of the query that is not considered by the algorithm" — and Section 4
proposes moving to the SPARQL algebra.  This benchmark runs both phrasings
through the BGP-only, FILTER-aware and algebra rewriters against the KISTI
endpoint and compares the retrieved co-author sets with the gold standard.
"""

from repro.federation import recall

from .conftest import report

MODES = ["bgp", "filter-aware", "algebra"]


def _queries(person_uri: str):
    figure1 = f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """
    figure6 = f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author ?n .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>) && (?n = <{person_uri}>))
    }}
    """
    return {"Figure 1 (BGP constraint)": figure1, "Figure 6 (FILTER constraint)": figure6}


def _kisti_gold(scenario, person_key):
    """Co-authors of the person restricted to what the KISTI copy can know."""
    gold = set()
    for paper in scenario.world.papers:
        if paper.key in scenario.kisti_builder.covered_paper_keys and \
                person_key in paper.author_keys:
            gold.update(paper.author_keys)
    gold.discard(person_key)
    return {scenario.kisti_builder.person_uri(key) for key in gold}


def test_bench_e7_filter_limitation(benchmark, scenario):
    # Choose a subject that the KISTI repository actually covers.
    candidates = sorted(
        scenario.kisti_builder.covered_person_keys,
        key=lambda key: -len(scenario.world.papers_of(key)),
    )
    person_key = candidates[0]
    person_uri = scenario.akt_builder.person_uri(person_key)
    gold = _kisti_gold(scenario, person_key)
    queries = _queries(str(person_uri))

    def run_matrix():
        cells = {}
        for query_label, query in queries.items():
            for mode in MODES:
                response = scenario.service.translate_and_run(
                    query, scenario.kisti_dataset,
                    source_ontology=scenario.source_ontology, mode=mode,
                )
                values = {row["a"].strip("<>") for row in response.rows}
                cells[(query_label, mode)] = values
        return cells

    cells = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = []
    recalls = {}
    for query_label in queries:
        row = [query_label]
        for mode in MODES:
            values = {v for v in cells[(query_label, mode)]}
            uris = {u for u in values}
            r = recall({f"<{u}>" for u in uris} and {u for u in uris},
                       {str(g) for g in gold})
            recalls[(query_label, mode)] = r
            row.append(f"{len(values)} rows / recall {r:.2f}")
        rows.append(tuple(row))

    report(
        "E7: Figure 6 FILTER limitation (retrieved from the KISTI endpoint)",
        rows,
        headers=("query phrasing", *MODES),
    )

    figure1 = "Figure 1 (BGP constraint)"
    figure6 = "Figure 6 (FILTER constraint)"
    # BGP-only handles Figure 1 but fails on Figure 6.
    assert recalls[(figure1, "bgp")] > 0.8
    assert recalls[(figure6, "bgp")] == 0.0
    # Both extensions recover the Figure 6 phrasing.
    assert recalls[(figure6, "filter-aware")] > 0.8
    assert recalls[(figure6, "algebra")] > 0.8
    # And they agree with the Figure 1 phrasing.
    assert cells[(figure6, "algebra")] == cells[(figure1, "algebra")]
